//! `netart stress` — the memory-governance stress harness.
//!
//! Generates a parameterised big-N or adversarial workload (see
//! [`netart_workloads::text`]), writes it to disk, and pushes it
//! through the *real* governed ingestion path — streaming record
//! readers, the netlist doctor, the budgeted network builder — exactly
//! as `netart` would, then optionally places and routes the result.
//!
//! The harness asserts the governor's contract from the outside:
//!
//! * under an adequate `--max-input-bytes` / `--max-network-bytes`
//!   budget the workload ingests and routes cleanly (exit 0);
//! * over budget, the run is *refused* — exit 2 with the `ND015`
//!   diagnostic naming the exhausted stage and its byte counts, no
//!   panic, no OOM;
//! * with `--rss-limit`, the process's peak RSS (`VmHWM`) must stay
//!   under the stated bound, turning "streaming ingestion does not
//!   slurp" into a checkable claim (exit 1 when breached: that is a
//!   harness assertion failure, not a governed refusal).
//!
//! Routing degradations (ghost wires at large N) are reported but do
//! not affect the exit code — this harness judges memory governance,
//! not routing quality.

use std::path::PathBuf;
use std::time::Instant;

use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart_workloads::text::{self, TextWorkload};

use crate::commands::{
    arm_faults, budget_from_args, budgets_from_args, exhausted_output, input_policy,
    install_subscriber, load_library_dir, load_network_files, parse_bytes, write_trace, CliError,
    RunOutput,
};
use crate::{ArgError, ParsedArgs};

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM`. `None` off Linux or when the proc file
/// is unreadable — the RSS assertion is then skipped, not failed.
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_bytes() -> Option<u64> {
    None
}

fn human_bytes(n: u64) -> String {
    match n {
        n if n >= 1 << 30 => format!("{:.1} GiB", n as f64 / (1u64 << 30) as f64),
        n if n >= 1 << 20 => format!("{:.1} MiB", n as f64 / (1u64 << 20) as f64),
        n if n >= 1 << 10 => format!("{:.1} KiB", n as f64 / (1u64 << 10) as f64),
        n => format!("{n} B"),
    }
}

/// Builds the requested workload. `modules` is a target, not a
/// contract — grid workloads round to their natural shape.
fn build_workload(
    kind: &str,
    modules: usize,
    seed: u64,
) -> Result<TextWorkload, CliError> {
    let w = match kind {
        "cell-array" => {
            let rows = ((modules as f64).sqrt() as usize).max(1);
            let cols = modules.div_ceil(rows);
            text::cell_array(rows, cols)
        }
        "hierarchy" => text::random_hierarchy(modules.max(2), seed),
        "datapath" => {
            let bits = 32usize.min(modules.max(2) - 1).max(1);
            let stages = modules.div_ceil(bits + 1).max(1);
            text::datapath_stack(bits, stages)
        }
        "fanout" => text::pathological_fanout(modules.max(2) - 1),
        "amplify" => text::amplified_calls(modules.max(2)),
        other => {
            return Err(ArgError::BadValue {
                flag: "workload".into(),
                value: other.into(),
            }
            .into())
        }
    };
    Ok(w)
}

/// `netart stress [--workload kind] [--modules n] [--seed s]
/// [--adversary truncate|garbage] [--phase parse|place|route]
/// [--max-input-bytes b] [--max-network-bytes b] [--rss-limit b]
/// [--out dir] [--input-policy p] [--route-timeout ms] [--max-nodes n]
/// [--inject spec] [--trace-level lvl] [--trace-out path] [--log-json]`
///
/// Workload kinds: `cell-array` (default; a near-square systolic
/// grid), `hierarchy` (seeded random tree), `datapath` (bit-sliced
/// stages with wide control nets), `fanout` (one net with `--modules`
/// pins), `amplify` (huge call text over a one-template library).
/// `--modules` (default 1000) scales the workload; generators are
/// byte-deterministic per `(kind, modules, seed)`.
///
/// `--adversary truncate` cuts the net-list mid-record; `--adversary
/// garbage` appends seeded binary-ish noise — both exercise the
/// doctor's fail-closed paths at scale. `--phase parse` stops after
/// the governed ingestion; `--phase route` (the default) runs the full
/// pipeline.
///
/// Exit 0: ingested (and routed) under budget. Exit 2: the memory
/// governor refused the workload (`ND015` with stage and byte counts).
/// Exit 1: harness assertion failure — an `--rss-limit` breach or a
/// non-governance pipeline error.
///
/// # Errors
///
/// Any [`CliError`] condition, including an unwritable `--out`
/// directory and a breached `--rss-limit`.
pub fn run_stress(argv: &[String]) -> Result<RunOutput, CliError> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "workload", "modules", "seed", "adversary", "phase", "max-input-bytes",
            "max-network-bytes", "rss-limit", "out", "input-policy", "route-timeout",
            "max-nodes", "inject", "trace-level", "trace-out",
        ],
        &["log-json", "keep"],
        (0, 0),
    )?;
    let trace = install_subscriber(&args)?;
    arm_faults(&args)?;
    let policy = input_policy(&args)?;
    let budgets = budgets_from_args(&args)?;
    let modules: usize = args.parsed("modules", 1000usize)?;
    let seed: u64 = args.parsed("seed", 1u64)?;
    let kind = args.value("workload").unwrap_or("cell-array");
    let phase = args.value("phase").unwrap_or("route");
    if !matches!(phase, "parse" | "route") {
        return Err(ArgError::BadValue {
            flag: "phase".into(),
            value: phase.into(),
        }
        .into());
    }
    let rss_limit = match args.value("rss-limit") {
        Some(s) => Some(parse_bytes("rss-limit", s)?),
        None => None,
    };

    let mut workload = build_workload(kind, modules, seed)?;
    workload = match args.value("adversary") {
        None => workload,
        Some("truncate") => {
            let keep = workload.net.len().saturating_sub(workload.net.len() / 3 + 2);
            workload.with_truncated_tail(keep)
        }
        Some("garbage") => workload.with_garbage_tail(64.max(modules / 4), seed),
        Some(other) => {
            return Err(ArgError::BadValue {
                flag: "adversary".into(),
                value: other.into(),
            }
            .into())
        }
    };
    let generated = workload.total_bytes();

    let (dir, ephemeral) = match args.value("out") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!(
                "netart-stress-{}-{}",
                workload.name,
                std::process::id()
            )),
            !args.has("keep"),
        ),
    };
    let paths = workload.write_to(&dir).map_err(|source| CliError::Io {
        path: dir.clone(),
        source,
    })?;
    let cleanup = || {
        if ephemeral {
            let _ = std::fs::remove_dir_all(&dir);
        }
    };

    // The governed ingestion path, verbatim: streamed module library,
    // streamed netlist trio, budgeted network build. An exhaustion
    // anywhere is the contract working — degraded exit 2 with ND015.
    let t_parse = Instant::now();
    let mut degs = Vec::new();
    let loaded = load_library_dir(&paths.lib, policy, &budgets, &mut degs).and_then(|lib| {
        load_network_files(
            lib,
            &paths.net,
            &paths.cal,
            paths.io.as_deref(),
            policy,
            &budgets,
        )
    });
    let network = match loaded {
        Ok((network, mut net_degs)) => {
            degs.append(&mut net_degs);
            network
        }
        Err(e @ CliError::ResourceExhausted { .. }) => {
            cleanup();
            return Ok(exhausted_output(&e, false, false));
        }
        Err(e) => {
            cleanup();
            return Err(e);
        }
    };
    let parse_s = t_parse.elapsed().as_secs_f64();

    let mut summary = format!(
        "stress {}: {} modules, {} nets, {} generated; parsed in {parse_s:.2}s \
         (input budget {} charged, network budget {} charged)",
        workload.name,
        network.module_count(),
        network.net_count(),
        human_bytes(generated),
        human_bytes(budgets.input.used()),
        human_bytes(budgets.network.used()),
    );

    if phase != "parse" {
        let route = RouteConfig::new().with_budget(budget_from_args(&args)?);
        let t_pipe = Instant::now();
        let outcome = netart::Generator::new()
            .with_placing(PlaceConfig::new())
            .with_routing(route)
            .generate(network);
        let pipe_s = t_pipe.elapsed().as_secs_f64();
        summary.push_str(&format!(
            "; {phase} phase {pipe_s:.2}s, routed {}/{} nets",
            outcome.report.routed.len(),
            outcome.report.routed.len() + outcome.report.failed.len(),
        ));
        if !outcome.is_clean() {
            summary.push_str(" (degraded: reported, not judged)");
        }
    }
    if !degs.is_empty() {
        summary.push_str(&format!("; {} doctor repair(s) applied", degs.len()));
    }

    let rss = peak_rss_bytes();
    match rss {
        Some(rss) => summary.push_str(&format!("; peak RSS {}", human_bytes(rss))),
        None => summary.push_str("; peak RSS unavailable on this platform"),
    }
    cleanup();
    write_trace(&args, trace.as_ref())?;

    if let (Some(limit), Some(rss)) = (rss_limit, rss) {
        if rss > limit {
            return Err(CliError::Other(format!(
                "peak RSS {} breaches the --rss-limit of {} — streaming ingestion \
                 slurped ({summary})",
                human_bytes(rss),
                human_bytes(limit),
            )));
        }
        summary.push_str(&format!(" (under the {} limit)", human_bytes(limit)));
    }

    Ok(RunOutput {
        message: summary,
        degraded: false,
        strict: false,
        message_to_stderr: false,
    })
}
