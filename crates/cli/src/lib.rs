//! Command-line schematic diagram generation.
//!
//! The paper shipped its generator as two UNIX programs plus a library
//! tool (Appendices B, E, F). This crate provides the same trio:
//!
//! * **`quinto`** — adds module descriptions to a library directory,
//! * **`pablo [options] net-list call-file [io-file]`** — places a
//!   network (`-p -b -c -e -i -s`, `-g` for a preplaced part),
//! * **`eureka [options] net-list call-file [io-file]`** — routes a
//!   placed diagram (`-u -d -r -l` fixed borders, `-s` swapped
//!   tie-break, `--diagram` for the placement to route),
//! * **`netart [options] net-list call-file [io-file]`** — both phases
//!   in one run, with an ASCII preview (`--art`).
//!
//! One deliberate divergence from 1989: the original `eureka` read only
//! the ESCHER graphic file because the module library lived in a global
//! `USER_LIB` environment variable; here the library is an explicit
//! `-L <dir>` of quinto files and the netlist files are always passed,
//! which keeps runs reproducible. `USER_LIB` is honoured as the default
//! library directory when `-L` is absent.
//!
//! Everything is implemented in this library crate so it can be tested;
//! the binaries are thin wrappers.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod args;
mod batch;
mod blackbox;
mod commands;
mod http;
mod profile;
mod serve;
mod shard;
mod stress;

pub use args::{ArgError, ParsedArgs};
pub use batch::{install_drain_handlers, install_flight_handler, run_batch};
pub use blackbox::run_blackbox;
pub use commands::{
    run_eureka, run_netart, run_pablo, run_quinto, run_report_diff, CliError, DiffOutput,
    RunOutput,
};
pub use profile::run_profile;
pub use serve::run_serve;
pub use stress::run_stress;
