//! Integration suite for `netart stress`: the memory-governance
//! harness must hold its exit-code contract from the outside — exit 0
//! when a generated workload ingests (and routes) under budget, exit 2
//! with an `ND015` diagnostic naming the exhausted stage and its byte
//! counts when the governor refuses, exit 1 when a harness assertion
//! (such as `--rss-limit`) fails — and its generators must be
//! byte-deterministic per `(kind, modules, seed)`.

use std::process::{Command, Output};

fn stress(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_netart"))
        .arg("stress")
        .args(args)
        .output()
        .expect("netart stress spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn under_budget_parse_exits_zero_with_a_summary() {
    let out = stress(&["--modules", "400", "--phase", "parse"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("modules"), "{text}");
    assert!(text.contains("network budget"), "{text}");
}

#[test]
fn over_budget_refusal_exits_two_with_nd015_and_byte_counts() {
    let out = stress(&[
        "--modules",
        "20000",
        "--phase",
        "parse",
        "--max-network-bytes",
        "64k",
    ]);
    assert_eq!(out.status.code(), Some(2), "a governed refusal is degraded");
    let text = stdout(&out);
    assert!(text.contains("ND015"), "{text}");
    assert!(text.contains("byte"), "the diagnostic carries counts: {text}");
    assert!(
        text.contains("memory budget exhausted"),
        "the diagnostic names the exhausted stage: {text}"
    );
}

#[test]
fn every_generator_kind_parses_under_no_budget() {
    for kind in ["cell-array", "hierarchy", "datapath", "fanout", "amplify"] {
        let out = stress(&["--workload", kind, "--modules", "120", "--phase", "parse"]);
        assert_eq!(out.status.code(), Some(0), "{kind}: {}", stderr(&out));
    }
}

#[test]
fn adversarial_tails_fail_closed_not_open() {
    for adversary in ["truncate", "garbage"] {
        let out = stress(&[
            "--modules",
            "200",
            "--adversary",
            adversary,
            "--phase",
            "parse",
        ]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{adversary}: a mangled tail is a diagnosed rejection"
        );
        let text = stderr(&out);
        assert!(text.contains("ND0"), "{adversary} is diagnosed: {text}");
    }
}

/// The summary up to the wall-clock part: workload name, module, net
/// and byte counts — everything that must be seed-deterministic.
fn stable_prefix(summary: &str) -> &str {
    summary.split("; parsed").next().expect("split never empties")
}

#[test]
fn summaries_are_deterministic_per_seed() {
    let args = ["--workload", "hierarchy", "--modules", "150", "--seed", "9", "--phase", "parse"];
    let first = stress(&args);
    let second = stress(&args);
    assert_eq!(first.status.code(), Some(0), "{}", stderr(&first));
    let (a, b) = (stdout(&first), stdout(&second));
    assert!(a.contains("; parsed"), "{a}");
    assert_eq!(
        stable_prefix(&a),
        stable_prefix(&b),
        "same seed, same workload shape"
    );
}

#[cfg(target_os = "linux")]
#[test]
fn rss_limit_breach_is_a_harness_failure() {
    let out = stress(&["--modules", "400", "--phase", "parse", "--rss-limit", "1"]);
    assert_eq!(out.status.code(), Some(1), "a breached limit fails outright");
    assert!(stderr(&out).contains("rss-limit"), "{}", stderr(&out));
}
