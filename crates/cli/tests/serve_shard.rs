//! Integration suite for `netart serve --shards N`: supervised
//! multi-process sharding.
//!
//! Pins the acceptance contract of the shard supervisor:
//!
//! * (a) `kill -9` of one worker never drops in-flight requests on
//!   surviving shards, and the supervisor respawns the dead shard
//!   within the backoff bound;
//! * (b) artifact replays are byte-identical between `--shards 1` and
//!   `--shards 4` — sharding must not change a single output byte;
//! * (c) repeated forced crashes trip the crash-loop breaker: the
//!   shard is quarantined (no respawn spinning) and `/readyz`
//!   degrades to `503 quorum_lost` while the survivor keeps serving;
//! * shard identity surfaces everywhere: `s{shard}-r{seq:06}` rids,
//!   a `shard` label on `netart_build_info`, per-shard liveness
//!   gauges and `netart_serve_shard_restarts_total` in `/metrics`,
//!   `shard_live`/`shard_restarts` in `/stats`;
//! * SIGTERM fans out: the whole fleet drains within the grace and
//!   the supervisor exits 0 with a fleet summary.

mod common;

use std::collections::HashSet;
use std::process::Command;
use std::time::{Duration, Instant};

use common::{chain_inputs, diagram_request, scratch, write_lib, ServeProc};
use netart::obs::{Json, ServeReport};

/// The supervisor's direct children (the shard workers), via procfs.
fn worker_pids(supervisor: u32) -> Vec<u32> {
    let path = format!("/proc/{supervisor}/task/{supervisor}/children");
    std::fs::read_to_string(path)
        .map(|s| s.split_whitespace().filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_default()
}

/// CPU ticks (utime + stime) a process has burned, via `/proc/<pid>/stat`.
fn cpu_ticks(pid: u32) -> u64 {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).unwrap_or_default();
    // Fields after the parenthesized comm: state is index 0, so utime
    // and stime land at indices 11 and 12.
    let after_comm = stat.rsplit_once(')').map_or("", |(_, rest)| rest);
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let tick = |i: usize| fields.get(i).and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    tick(11) + tick(12)
}

/// Polls `probe` until it returns true or `timeout` elapses.
fn wait_for(what: &str, timeout: Duration, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if probe() {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn parse_report(body: &str) -> ServeReport {
    ServeReport::from_json(&Json::parse(body).unwrap_or_else(|e| panic!("not JSON: {e}: {body}")))
        .unwrap_or_else(|e| panic!("not a serve report: {e}: {body}"))
}

#[test]
fn sharded_boot_stamps_shard_identity_everywhere() {
    let dir = scratch("shard-identity");
    let mut server = ServeProc::start(&write_lib(&dir), &["--shards", "1"]);

    // rids carry the shard prefix: a deadline-cancelled request names
    // itself in its own degradation record.
    let (net, cal, io) = chain_inputs(60);
    let body = diagram_request(&net, &cal, Some(&io))
        .with("options", Json::obj().with("timeout_ms", 1u64))
        .render_pretty();
    let response = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(response.status, 200);
    assert!(
        response.body.contains("request s0-r000000"),
        "sharded rids are s{{shard}}-r{{seq:06}}: {}",
        response.body
    );

    // /metrics: shard-labelled build info, per-shard liveness, and the
    // restart counter registered from boot.
    let metrics = server.exchange("GET", "/metrics", None).body;
    assert!(metrics.contains("netart_build_info{version="), "{metrics}");
    assert!(metrics.contains("shard=\"0\""), "{metrics}");
    assert!(metrics.contains("netart_serve_shard_live{shard=\"0\"} 1"), "{metrics}");
    assert!(metrics.contains("netart_serve_shard_restarts_total 0"), "{metrics}");

    // /stats: fleet gauges.
    let stats = server.exchange("GET", "/stats", None).body;
    assert!(stats.contains("\"shard_live\": 1"), "{stats}");
    assert!(stats.contains("\"shard_restarts\": 0"), "{stats}");

    // SIGTERM: quorum drain, exit 0, fleet summary on stdout.
    server.sigterm();
    let (code, rest) = server.wait_exit();
    assert_eq!(code, Some(0), "clean fleet drain");
    assert!(rest.contains("drained cleanly: 1 shard(s) supervised"), "{rest}");
}

#[test]
fn replays_are_byte_identical_between_one_and_four_shards() {
    let dir = scratch("shard-replay");
    let lib = write_lib(&dir);
    let (net, cal, io) = chain_inputs(8);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();

    let mut single = ServeProc::start(&lib, &["--shards", "1"]);
    let reference = parse_report(&single.exchange("POST", "/v1/diagram", Some(&body)).body);
    assert!(!reference.escher.is_empty() && !reference.svg.is_empty());
    single.sigterm();
    assert_eq!(single.wait_exit().0, Some(0));

    // Four shards, several replays: whichever worker computes (or
    // replays from its own cache), every byte must match the
    // single-process artifacts.
    let mut fleet = ServeProc::start(&lib, &["--shards", "4"]);
    for attempt in 0..6 {
        let report = parse_report(&fleet.exchange("POST", "/v1/diagram", Some(&body)).body);
        assert_eq!(report.artifact, reference.artifact, "attempt {attempt}");
        assert_eq!(report.escher, reference.escher, "attempt {attempt}: escher drifted");
        assert_eq!(report.svg, reference.svg, "attempt {attempt}: svg drifted");
    }
    fleet.sigterm();
    assert_eq!(fleet.wait_exit().0, Some(0));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn kill9_of_one_shard_spares_survivors_inflight_work_and_respawns() {
    let dir = scratch("shard-kill9");
    // Deep queues so the in-flight load is admitted, not shed.
    let mut server = ServeProc::start(
        &write_lib(&dir),
        &["--shards", "2", "--workers", "2", "--queue-depth", "8"],
    );
    wait_for("both workers", Duration::from_secs(10), || {
        worker_pids(server.pid()).len() == 2
    });
    let before: Vec<u32> = worker_pids(server.pid());

    // Park slow, distinct (non-coalescing) requests across the fleet.
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..6)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (net, cal, io) = chain_inputs(60 + k);
                let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
                common::http_request(&addr, "POST", "/v1/diagram", Some(&body))
                    .map(|r| r.status)
                    .unwrap_or(0)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(500));

    // The kernel is free to hand any accept to any worker, so pick the
    // victim by observed CPU: the busier worker is routing the parked
    // requests, the other holds at most half of them. Killing the
    // *less* busy worker guarantees live in-flight work survives it.
    let victim = *before
        .iter()
        .min_by_key(|&&p| cpu_ticks(p))
        .expect("two workers");

    // SIGKILL it mid-request: no unwinding, no drain — the
    // containment PR 5/6's catch_unwind cannot provide.
    assert!(Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("kill runs")
        .success());

    // (a) In-flight requests on the surviving shard complete. Requests
    // that were riding the killed worker's connections may fail at the
    // transport — that shard died — but the survivor-side requests
    // must answer 200, and none may hang.
    let outcomes: Vec<u16> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
    assert!(
        outcomes.contains(&200),
        "no in-flight request survived the kill: {outcomes:?}"
    );

    // The supervisor respawns within the backoff bound (first death:
    // ~100-125 ms; generous margin for process boot).
    wait_for("respawn", Duration::from_secs(10), || {
        let now = worker_pids(server.pid());
        now.len() == 2 && now.iter().any(|p| !before.contains(p))
    });
    // The respawn surfaces in telemetry and readiness recovers.
    wait_for("restart counter", Duration::from_secs(10), || {
        server
            .exchange("GET", "/metrics", None)
            .body
            .contains("netart_serve_shard_restarts_total 1")
    });
    wait_for("quorum readiness", Duration::from_secs(10), || {
        server.exchange("GET", "/readyz", None).status == 200
    });

    server.sigterm();
    let (code, rest) = server.wait_exit();
    assert_eq!(code, Some(0));
    assert!(rest.contains("1 restart(s)"), "{rest}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn crash_loop_trips_the_breaker_and_degrades_readiness_without_spinning() {
    let dir = scratch("shard-breaker");
    let mut server = ServeProc::start(
        &write_lib(&dir),
        &["--shards", "2", "--crash-limit", "3", "--crash-window", "60000"],
    );
    wait_for("both workers", Duration::from_secs(10), || {
        worker_pids(server.pid()).len() == 2
    });
    let initial = worker_pids(server.pid());
    // The survivor: one worker we never touch. Every kill lands on
    // the other shard (whatever pid its respawn is wearing).
    let survivor = initial[1];

    for round in 1..=3u32 {
        let victims: Vec<u32> = worker_pids(server.pid())
            .into_iter()
            .filter(|&p| p != survivor)
            .collect();
        assert_eq!(victims.len(), 1, "round {round}: exactly one victim shard");
        assert!(Command::new("kill")
            .args(["-9", &victims[0].to_string()])
            .status()
            .expect("kill runs")
            .success());
        if round < 3 {
            // Wait out the backoff for the respawn before striking
            // again — three deaths, all inside the 60 s window.
            let dead = victims[0];
            wait_for("respawn", Duration::from_secs(15), || {
                worker_pids(server.pid())
                    .iter()
                    .any(|&p| p != survivor && p != dead)
            });
        }
    }

    // (c) The third death inside the window trips the breaker: the
    // shard is quarantined and readiness degrades to 503 instead of a
    // respawn spin.
    wait_for("quorum_lost readiness", Duration::from_secs(10), || {
        let r = server.exchange("GET", "/readyz", None);
        r.status == 503 && r.body.contains("quorum_lost")
    });
    // Quarantine means *no* respawn: the fleet stays at one worker.
    std::thread::sleep(Duration::from_secs(1));
    let remaining = worker_pids(server.pid());
    assert_eq!(remaining, vec![survivor], "a quarantined shard is not respawned");

    // The survivor keeps serving: liveness intact, work still done,
    // two respawns on the counter (death 3 quarantined instead).
    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    let (net, cal, io) = chain_inputs(4);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body)).status, 200);
    let metrics = server.exchange("GET", "/metrics", None).body;
    assert!(metrics.contains("netart_serve_shard_restarts_total 2"), "{metrics}");
    let live: HashSet<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("netart_serve_shard_live{"))
        .filter_map(|l| l.split_whitespace().nth(1))
        .collect();
    assert_eq!(
        live,
        HashSet::from(["0", "1"]),
        "one live gauge up, the quarantined one down: {metrics}"
    );
    let stats = server.exchange("GET", "/stats", None).body;
    assert!(stats.contains("\"shard_live\": 1"), "{stats}");
    assert!(stats.contains("\"shard_restarts\": 2"), "{stats}");

    // A degraded fleet still drains cleanly.
    server.sigterm();
    let (code, rest) = server.wait_exit();
    assert_eq!(code, Some(0));
    assert!(rest.contains("1 quarantined"), "{rest}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigusr1_fans_out_shard_stamped_blackboxes() {
    let dir = scratch("shard-usr1");
    let dump = dir.join("bb.json");
    let server = ServeProc::start(
        &write_lib(&dir),
        &["--shards", "2", "--blackbox", &dump.to_string_lossy()],
    );
    wait_for("both workers", Duration::from_secs(10), || {
        worker_pids(server.pid()).len() == 2
    });
    server.signal("USR1");
    // Each worker freezes its own ring under a shard-stamped name.
    for shard in 0..2 {
        let stamped = dir.join(format!("bb.s{shard}.json"));
        wait_for(&format!("blackbox {}", stamped.display()), Duration::from_secs(10), || {
            stamped.exists()
        });
    }
    assert!(!dump.exists(), "the unstamped path is never written in sharded mode");
    let _ = std::fs::remove_dir_all(dir);
}
