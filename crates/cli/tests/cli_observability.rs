//! Binary-level observability contract: `--trace-out` emits a
//! structurally valid Chrome trace-event document without disturbing
//! the run's other outputs, stdout-claim conflicts fail loudly, and
//! `netart report diff` exits 0 on a self-diff and 3 on a regression.
//!
//! Everything here shells out to the built binaries
//! (`CARGO_BIN_EXE_*`), so each case gets a fresh process and its own
//! global subscriber slot — the in-process tests in `commands.rs`
//! cannot cover that.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use netart_obs::Json;

const MODULE_SRC: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";
const NET_SRC: &str = "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n";
const CALL_SRC: &str = "u0 inv\nu1 inv\n";
const IO_SRC: &str = "in in\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netart-obscli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_inputs(dir: &Path) -> (String, String, String, String) {
    let lib = dir.join("lib");
    fs::create_dir_all(&lib).unwrap();
    fs::write(lib.join("inv.qto"), MODULE_SRC).unwrap();
    let nets = dir.join("design.net");
    fs::write(&nets, NET_SRC).unwrap();
    let calls = dir.join("design.call");
    fs::write(&calls, CALL_SRC).unwrap();
    let io = dir.join("design.io");
    fs::write(&io, IO_SRC).unwrap();
    (
        lib.to_string_lossy().into_owned(),
        nets.to_string_lossy().into_owned(),
        calls.to_string_lossy().into_owned(),
        io.to_string_lossy().into_owned(),
    )
}

fn netart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_netart"))
        .args(args)
        .output()
        .expect("netart spawns")
}

fn eureka(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_eureka"))
        .args(args)
        .output()
        .expect("eureka spawns")
}

fn pablo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pablo"))
        .args(args)
        .output()
        .expect("pablo spawns")
}

/// Asserts `text` is a trace-event array whose members carry the
/// required fields and whose `B`/`E` events balance per thread track.
/// Returns the span names seen opening.
fn check_trace(text: &str) -> Vec<String> {
    let doc = Json::parse(text).expect("trace is valid JSON");
    let events = doc.as_arr().expect("trace is an array");
    assert!(!events.is_empty(), "trace recorded nothing");
    let mut opened = Vec::new();
    let mut stacks = std::collections::BTreeMap::<u64, Vec<String>>::new();
    for e in events {
        for member in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(member).is_some(), "member {member} missing in {e:?}");
        }
        let name = e.get("name").and_then(Json::as_str).unwrap().to_owned();
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        match e.get("ph").and_then(Json::as_str).unwrap() {
            "B" => {
                opened.push(name.clone());
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let top = stacks.entry(tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(name.as_str()), "E matches open B");
            }
            "i" => {}
            other => panic!("unknown phase {other}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    opened
}

#[test]
fn netart_trace_out_is_valid_and_covers_the_pipeline() {
    let dir = scratch("trace");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let trace = dir.join("trace.json");
    let run = netart(&[
        "-L",
        &lib,
        "-o",
        &out,
        "--trace-out",
        trace.to_str().unwrap(),
        &nets,
        &calls,
        &io,
    ]);
    assert!(run.status.success(), "{:?}", run);
    let text = fs::read_to_string(&trace).expect("trace written");
    let opened = check_trace(&text);
    for span in ["netart.place", "netart.route", "eureka.net"] {
        assert!(
            opened.iter().any(|n| n == span),
            "span {span} missing from trace: {opened:?}"
        );
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn eureka_trace_out_shows_per_net_spans() {
    let dir = scratch("etrace");
    let (lib, nets, calls, io) = write_inputs(&dir);
    // Place without routing (pablo), then route under eureka with the
    // trace recorder on — a prerouted diagram would give the router
    // nothing to do and no per-net spans.
    let placed = dir.join("placed").to_string_lossy().into_owned();
    let run = pablo(&["-L", &lib, "-o", &placed, &nets, &calls, &io]);
    assert!(run.status.success(), "{:?}", run);
    let esc = dir.join("placed.esc").to_string_lossy().into_owned();
    let routed = dir.join("routed").to_string_lossy().into_owned();
    let trace = dir.join("eureka-trace.json");
    let run = eureka(&[
        "-L",
        &lib,
        "--diagram",
        &esc,
        "-o",
        &routed,
        "--trace-out",
        trace.to_str().unwrap(),
        &nets,
        &calls,
        &io,
    ]);
    assert!(run.status.success(), "{:?}", run);
    let opened = check_trace(&fs::read_to_string(&trace).expect("trace written"));
    assert!(
        opened.iter().any(|n| n == "eureka.net"),
        "per-net router spans missing: {opened:?}"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn trace_flag_leaves_other_outputs_byte_identical() {
    // Same directory and output name for both runs: the diagram
    // header embeds the output path, so the only allowed difference
    // is the presence of the trace file itself.
    let dir = scratch("identical");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let trace = dir.join("trace.json").to_string_lossy().into_owned();

    let plain = netart(&["-L", &lib, "-o", &out, &nets, &calls, &io]);
    assert!(plain.status.success(), "{:?}", plain);
    let plain_esc = fs::read(dir.join("out.esc")).expect("diagram written");
    let plain_svg = fs::read(dir.join("out.svg")).expect("svg written");

    let traced = netart(&[
        "-L",
        &lib,
        "-o",
        &out,
        "--trace-out",
        &trace,
        &nets,
        &calls,
        &io,
    ]);
    assert!(traced.status.success(), "{:?}", traced);
    let traced_esc = fs::read(dir.join("out.esc")).expect("diagram written");
    let traced_svg = fs::read(dir.join("out.svg")).expect("svg written");

    // The summary prints wall times, so only the artifacts can be
    // compared byte-for-byte.
    assert_eq!(plain_esc, traced_esc, "--trace-out changed the emitted diagram");
    assert_eq!(plain_svg, traced_svg, "--trace-out changed the emitted SVG");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn trace_to_stdout_moves_summary_to_stderr() {
    let dir = scratch("stdout");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let run = netart(&[
        "-L", &lib, "-o", &out, "--trace-out", "-", &nets, &calls, &io,
    ]);
    assert!(run.status.success(), "{:?}", run);
    let stdout = String::from_utf8(run.stdout).expect("stdout is UTF-8");
    check_trace(&stdout);
    assert!(
        !String::from_utf8_lossy(&run.stderr).is_empty(),
        "summary should move to stderr"
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn double_stdout_claim_fails_loudly() {
    let dir = scratch("claim");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let run = netart(&[
        "-L",
        &lib,
        "--report-json",
        "-",
        "--trace-out",
        "-",
        &nets,
        &calls,
        &io,
    ]);
    assert_eq!(run.status.code(), Some(1), "{:?}", run);
    assert!(
        String::from_utf8_lossy(&run.stderr).contains("claim stdout"),
        "{:?}",
        run
    );
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn report_self_diff_exits_zero() {
    let dir = scratch("selfdiff");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let report = dir.join("report.json").to_string_lossy().into_owned();
    let run = netart(&[
        "-L",
        &lib,
        "-o",
        &out,
        "--report-json",
        &report,
        &nets,
        &calls,
        &io,
    ]);
    assert!(run.status.success(), "{:?}", run);
    let diff = netart(&["report", "diff", &report, &report]);
    assert!(diff.status.success(), "{:?}", diff);
    assert!(
        String::from_utf8_lossy(&diff.stdout).contains("ok: no regressions"),
        "{:?}",
        diff
    );
    let _ = fs::remove_dir_all(dir);
}

/// The acceptance scenario: a budget-exhaust fault injected into the
/// router makes the current run objectively worse than the clean
/// baseline, and the differ must exit 3 naming the offending metrics.
/// Needs the fault-injection feature compiled into the binary.
#[cfg(feature = "fault-injection")]
#[test]
fn report_diff_exits_three_on_injected_regression() {
    let dir = scratch("regress");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let baseline = dir.join("baseline.json").to_string_lossy().into_owned();
    let run = netart(&[
        "-L",
        &lib,
        "-o",
        &out,
        "--report-json",
        &baseline,
        &nets,
        &calls,
        &io,
    ]);
    assert!(run.status.success(), "{:?}", run);

    let hurt = dir.join("hurt").to_string_lossy().into_owned();
    let current = dir.join("current.json").to_string_lossy().into_owned();
    let run = netart(&[
        "-L",
        &lib,
        "-o",
        &hurt,
        "--report-json",
        &current,
        "--input-policy",
        "repair",
        "--inject",
        "route.net:1:budget-exhaust",
        &nets,
        &calls,
        &io,
    ]);
    assert_eq!(run.status.code(), Some(2), "injected run degrades: {run:?}");

    let diff_json = dir.join("diff.json");
    let diff = netart(&[
        "report",
        "diff",
        &baseline,
        &current,
        "--diff-json",
        diff_json.to_str().unwrap(),
    ]);
    assert_eq!(diff.status.code(), Some(3), "{:?}", diff);
    let text = String::from_utf8_lossy(&diff.stdout);
    assert!(text.contains("REGRESSION:"), "{text}");
    assert!(
        text.contains("over_budget") || text.contains("degradations."),
        "offending metric not named: {text}"
    );
    let doc = Json::parse(&fs::read_to_string(&diff_json).expect("diff written"))
        .expect("diff JSON parses");
    assert_eq!(doc.get("regression"), Some(&Json::Bool(true)));
    assert!(!doc.get("entries").and_then(Json::as_arr).unwrap().is_empty());
    let _ = fs::remove_dir_all(dir);
}

/// The profile acceptance criterion: `netart profile --heat-json`
/// emits a schema-versioned document built purely from deterministic
/// counters, so two runs over the same design must be bit-identical
/// and a `report diff` of the pair must be a clean self-diff.
#[test]
fn profile_heat_json_is_bit_identical_across_runs() {
    let dir = scratch("profile");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let heat_a = dir.join("heat-a.json").to_string_lossy().into_owned();
    let heat_b = dir.join("heat-b.json").to_string_lossy().into_owned();
    for heat in [&heat_a, &heat_b] {
        let run = netart(&[
            "profile", "-L", &lib, "--grid", "8", "--heat-json", heat, &nets, &calls, &io,
        ]);
        assert!(run.status.success(), "{:?}", run);
        let map = String::from_utf8_lossy(&run.stdout);
        assert!(map.starts_with("+--------+\n"), "ASCII border missing: {map}");
        assert!(map.contains("expansions (hottest cell"), "legend missing: {map}");
    }

    let bytes_a = fs::read(&heat_a).unwrap();
    let bytes_b = fs::read(&heat_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "heat-map JSON differs between identical runs");

    let doc = Json::parse(std::str::from_utf8(&bytes_a).unwrap()).expect("heat JSON parses");
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("profile"));
    for member in ["tool", "cols", "rows", "bounds", "totals", "cells"] {
        assert!(doc.get(member).is_some(), "member {member} missing");
    }

    let diff = netart(&["report", "diff", &heat_a, &heat_b]);
    assert!(diff.status.success(), "profile self-diff regressed: {diff:?}");
    assert!(
        String::from_utf8_lossy(&diff.stdout).contains("ok: no regressions"),
        "{:?}",
        diff
    );
    let _ = fs::remove_dir_all(dir);
}
