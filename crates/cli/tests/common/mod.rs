//! Shared helpers for the integration suites that drive the `netart`
//! binary: scratch fixtures, a minimal HTTP/1.1 client, and a handle
//! on a spawned `netart serve` process.
//!
//! Lives in `tests/common/` (not directly under `tests/`) so cargo
//! does not treat it as a test target of its own.

#![allow(dead_code)] // each including test target uses a subset

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use netart::obs::Json;

pub const MODULE_SRC: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";

/// A scratch directory unique to this test and process.
pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netart-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the one-module library and returns its directory as a string.
pub fn write_lib(dir: &Path) -> String {
    let lib = dir.join("lib");
    fs::create_dir_all(&lib).expect("lib dir");
    fs::write(lib.join("inv.qto"), MODULE_SRC).expect("module file");
    lib.to_string_lossy().into_owned()
}

/// A chain of `n` inverters (`u0 → u1 → … → u{n-1}`) plus the system
/// input, as request-body strings `(net, cal, io)`. Bigger `n` means
/// genuinely more placement and routing work — the knob the serve
/// tests use to hold a worker busy for a while.
pub fn chain_inputs(n: usize) -> (String, String, String) {
    assert!(n >= 2);
    let mut net = String::from("nin root in\nnin u0 a\n");
    let mut cal = String::new();
    for k in 0..n - 1 {
        net.push_str(&format!("n{k} u{k} y\nn{k} u{} a\n", k + 1));
    }
    for k in 0..n {
        cal.push_str(&format!("u{k} inv\n"));
    }
    (net, cal, "in in\n".to_owned())
}

/// The `POST /v1/diagram` document for a netlist group.
pub fn diagram_request(net: &str, cal: &str, io: Option<&str>) -> Json {
    Json::obj()
        .with("net", net)
        .with("cal", cal)
        .with("io", io.map(Json::from))
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub head: String,
    pub body: String,
}

impl HttpResponse {
    /// Whether a response header is present (name match only,
    /// case-insensitive).
    pub fn has_header(&self, name: &str) -> bool {
        let needle = format!("{}:", name.to_ascii_lowercase());
        self.head
            .lines()
            .any(|l| l.to_ascii_lowercase().starts_with(&needle))
    }
}

/// One `Connection: close` HTTP/1.1 exchange against `addr`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: netart\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("no header end: {raw:?}"))
    })?;
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad status line: {head:?}"))
        })?;
    Ok(HttpResponse {
        status,
        head: head.to_owned(),
        body: body.to_owned(),
    })
}

/// A spawned `netart serve` process bound to an ephemeral port.
pub struct ServeProc {
    child: Child,
    pub addr: String,
    stdout_rest: Arc<Mutex<String>>,
    collector: Option<std::thread::JoinHandle<()>>,
}

impl ServeProc {
    /// Boots `netart serve --addr 127.0.0.1:0 -L <lib> <extra…>` and
    /// reads the resolved address off the first stdout line.
    ///
    /// A default `--blackbox` under the temp dir keeps incidental
    /// dumps (deadline breaches, injected faults) out of the source
    /// tree; tests that care about the dump pass their own path in
    /// `extra`, which wins (last flag value is kept).
    pub fn start(lib: &str, extra: &[&str]) -> ServeProc {
        static BOOT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let blackbox = std::env::temp_dir().join(format!(
            "netart-serve-bb-{}-{}.json",
            std::process::id(),
            BOOT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        let mut child = Command::new(env!("CARGO_BIN_EXE_netart"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0", "-L", lib])
            .args(["--blackbox", &blackbox.to_string_lossy()])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("netart serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("serve prints its address");
        let addr = line
            .trim()
            .strip_prefix("serving on http://")
            .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
            .to_owned();
        // Keep draining stdout so the child can never block on a full
        // pipe; the drained text carries the final summary line.
        let stdout_rest = Arc::new(Mutex::new(String::new()));
        let collector = {
            let stdout_rest = Arc::clone(&stdout_rest);
            std::thread::spawn(move || {
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                stdout_rest.lock().expect("collector lock").push_str(&rest);
            })
        };
        ServeProc {
            child,
            addr,
            stdout_rest,
            collector: Some(collector),
        }
    }

    /// One HTTP exchange against this server.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        http_request(&self.addr, method, path, body)
    }

    /// Like [`ServeProc::request`] but panics on transport failure —
    /// for exchanges the test expects to simply work.
    pub fn exchange(&self, method: &str, path: &str, body: Option<&str>) -> HttpResponse {
        self.request(method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path} failed: {e}"))
    }

    /// The spawned process id (for `/proc/<pid>/…` inspection).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Sends SIGTERM (the supervisor's stop signal).
    pub fn sigterm(&self) {
        self.signal("TERM");
    }

    /// Sends an arbitrary signal by name (`TERM`, `USR1`, …).
    pub fn signal(&self, name: &str) {
        let status = Command::new("kill")
            .args([&format!("-{name}"), &self.child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(status.success(), "kill -{name} failed");
    }

    /// Waits for exit; returns the exit code and the remaining stdout
    /// (which carries the drain summary).
    pub fn wait_exit(&mut self) -> (Option<i32>, String) {
        let status = self.child.wait().expect("serve exits");
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        let rest = self.stdout_rest.lock().expect("collector lock").clone();
        (status.code(), rest)
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        // Idempotent: killing an already-exited child just errors.
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
    }
}
