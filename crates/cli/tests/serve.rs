//! Integration suite for `netart serve`: boots the real binary on an
//! ephemeral port and drives it over real sockets. Covers the
//! hardened-service contract end to end — lifecycle endpoints,
//! content-addressed cache replays (byte-identical), single-flight
//! coalescing, admission-control shedding under overload, deadline
//! propagation into structured degraded responses, the `/metrics`
//! Prometheus exposition, the `--access-log` JSONL stream, and the
//! SIGTERM-drain exit path.

mod common;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use common::{chain_inputs, diagram_request, scratch, write_lib, HttpResponse, ServeProc};
use netart::obs::{BlackboxDump, Json, ServeReport, ServeStats};

fn parse_report(response: &HttpResponse) -> ServeReport {
    let doc = Json::parse(&response.body)
        .unwrap_or_else(|e| panic!("response body is not JSON: {e}: {}", response.body));
    ServeReport::from_json(&doc)
        .unwrap_or_else(|e| panic!("response fails the serve schema: {e}: {}", response.body))
}

fn stats(server: &ServeProc) -> ServeStats {
    let response = server.exchange("GET", "/stats", None);
    assert_eq!(response.status, 200);
    ServeStats::from_json(&Json::parse(&response.body).expect("stats body is JSON"))
        .expect("stats body fits the schema")
}

#[test]
fn lifecycle_and_rejection_endpoints_respond() {
    let dir = scratch("lifecycle");
    let server = ServeProc::start(&write_lib(&dir), &[]);

    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    let ready = server.exchange("GET", "/readyz", None);
    assert_eq!(ready.status, 200);
    assert!(ready.body.contains("ready"));
    assert_eq!(server.exchange("GET", "/stats", None).status, 200);

    // Unknown endpoint and wrong method are diagnosed, not dropped.
    assert_eq!(server.exchange("GET", "/nope", None).status, 404);
    assert_eq!(server.exchange("GET", "/v1/diagram", None).status, 405);

    // Protocol rejections: non-JSON body, JSON without the required
    // members, and a doctor rejection (unknown module under the
    // default strict policy).
    let bad = server.exchange("POST", "/v1/diagram", Some("not json"));
    assert_eq!(bad.status, 400);
    let empty = server.exchange("POST", "/v1/diagram", Some("{}"));
    assert_eq!(empty.status, 422);
    let unknown_module = diagram_request("n0 u0 y\n", "u0 mystery\n", None).render_pretty();
    let rejected = server.exchange("POST", "/v1/diagram", Some(&unknown_module));
    assert_eq!(rejected.status, 422);
    let report = parse_report(&rejected);
    assert_eq!(report.status.as_str(), "failed");
    assert!(report.error.is_some(), "rejection carries a message");

    let after = stats(&server);
    assert_eq!(after.requests, 3, "only POST /v1/diagram counts as a request");
    assert_eq!(after.failed, 3);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn oversized_bodies_are_refused_with_413() {
    let dir = scratch("toolarge");
    let server = ServeProc::start(&write_lib(&dir), &["--max-body", "256"]);

    let (net, cal, io) = chain_inputs(40);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert!(body.len() > 256);
    let response = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(response.status, 413);
    assert_eq!(parse_report(&response).status.as_str(), "failed");

    // The refusal happened at admission: the pipeline never ran and
    // the server is still healthy.
    let after = stats(&server);
    assert_eq!(after.too_large, 1);
    assert_eq!(after.requests, 0);
    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_replays_are_byte_identical() {
    let dir = scratch("cache");
    let server = ServeProc::start(&write_lib(&dir), &[]);

    let (net, cal, io) = chain_inputs(6);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();

    let first = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(first.status, 200, "{}", first.body);
    let first = parse_report(&first);
    assert_eq!(first.cache.as_str(), "miss");
    assert!(!first.escher.is_empty() && !first.svg.is_empty());
    assert!(first.report.is_some(), "run report is inline");

    // A whitespace-respelled identical input must hit the cache and
    // replay the artifacts byte for byte.
    let respelled = net.replace('\n', "   \r\n");
    let body2 = diagram_request(&respelled, &cal, Some(&io)).render_pretty();
    let second = server.exchange("POST", "/v1/diagram", Some(&body2));
    assert_eq!(second.status, 200);
    let second = parse_report(&second);
    assert_eq!(second.cache.as_str(), "hit");
    assert_eq!(second.artifact, first.artifact);
    assert_eq!(second.escher, first.escher, "byte-identical replay");
    assert_eq!(second.svg, first.svg, "byte-identical replay");

    // Different options address a different artifact: a miss.
    let reordered = diagram_request(&net, &cal, Some(&io))
        .with("options", Json::obj().with("order", "most"))
        .render_pretty();
    let third = parse_report(&server.exchange("POST", "/v1/diagram", Some(&reordered)));
    assert_eq!(third.cache.as_str(), "miss");
    assert_ne!(third.artifact, first.artifact);

    let after = stats(&server);
    assert_eq!(after.cache_hits, 1);
    assert_eq!(after.cache_misses, 2);
    assert!(after.cache_entries >= 2);
    assert!(after.cache_bytes > 0);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_identical_requests_compute_once() {
    let dir = scratch("flight");
    let server = ServeProc::start(&write_lib(&dir), &["--workers", "2"]);

    let (net, cal, io) = chain_inputs(30);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    let reports: Vec<ServeReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let body = &body;
                let server = &server;
                scope.spawn(move || {
                    let response = server.exchange("POST", "/v1/diagram", Some(body));
                    assert_eq!(response.status, 200, "{}", response.body);
                    parse_report(&response)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Exactly one computation; everyone got byte-identical artifacts,
    // whether they coalesced onto the flight or replayed the cache.
    for r in &reports[1..] {
        assert_eq!(r.artifact, reports[0].artifact);
        assert_eq!(r.escher, reports[0].escher, "byte-identical across callers");
        assert_eq!(r.svg, reports[0].svg);
    }
    let after = stats(&server);
    assert_eq!(after.cache_misses, 1, "one leader computed");
    assert_eq!(
        after.coalesced + after.cache_hits,
        3,
        "the rest coalesced or hit the cache: {after:?}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn overload_sheds_with_429_and_the_server_survives() {
    let dir = scratch("overload");
    // One worker, queue depth one: the third concurrent distinct
    // request must shed.
    let server = ServeProc::start(&write_lib(&dir), &["--workers", "1", "--queue-depth", "1"]);

    // Eight *distinct* heavy requests (coalescing would defeat the
    // point) fired concurrently.
    let bodies: Vec<String> = (0..8)
        .map(|k| {
            let (net, cal, io) = chain_inputs(60 + k);
            diagram_request(&net, &cal, Some(&io)).render_pretty()
        })
        .collect();
    let responses: Vec<HttpResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                let server = &server;
                scope.spawn(move || server.exchange("POST", "/v1/diagram", Some(body)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let shed: Vec<&HttpResponse> = responses.iter().filter(|r| r.status == 429).collect();
    assert!(!shed.is_empty(), "a saturated queue must shed");
    for r in &shed {
        assert!(r.has_header("Retry-After"), "shed responses say when to retry");
        assert_eq!(parse_report(r).status.as_str(), "failed");
    }
    for r in &responses {
        assert!(
            r.status == 200 || r.status == 429,
            "overload answers cleanly or sheds, got {}: {}",
            r.status,
            r.body
        );
    }

    // The server took the overload without dying, and the ledger adds
    // up: every request either resolved or shed.
    let after = stats(&server);
    assert_eq!(after.requests, 8);
    assert_eq!(after.shed, shed.len() as u64);
    assert_eq!(
        after.clean + after.degraded + after.failed + after.shed,
        8,
        "{after:?}"
    );
    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_breach_degrades_structurally_and_is_not_cached() {
    let dir = scratch("deadline");
    let server = ServeProc::start(&write_lib(&dir), &[]);

    let (net, cal, io) = chain_inputs(60);
    let body = diagram_request(&net, &cal, Some(&io))
        .with("options", Json::obj().with("timeout_ms", 1u64))
        .render_pretty();

    let response = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(response.status, 200, "a deadline breach degrades, it does not fail");
    let report = parse_report(&response);
    assert_eq!(report.status.as_str(), "degraded");
    assert!(!report.escher.is_empty(), "the truncated diagram is still emitted");
    assert!(
        response.body.contains("deadline_cancelled"),
        "the degradation is named in the run report: {}",
        response.body
    );

    // Timing-dependent results are never cached: the same request
    // computes again instead of replaying a truncated artifact.
    let again = parse_report(&server.exchange("POST", "/v1/diagram", Some(&body)));
    assert_eq!(again.cache.as_str(), "miss");

    let after = stats(&server);
    assert!(after.deadline_cancelled >= 2, "{after:?}");
    assert_eq!(after.cache_hits, 0);
    assert_eq!(after.degraded, 2);
    let _ = std::fs::remove_dir_all(dir);
}

/// One parsed Prometheus exposition: series (name plus rendered label
/// set) to value. Asserts the line-oriented format invariants while
/// parsing: every series is declared by a preceding `# TYPE` line, and
/// every sample value is a non-negative integer.
fn parse_exposition(text: &str) -> (BTreeMap<String, u64>, BTreeMap<String, String>) {
    let mut types = BTreeMap::new();
    let mut series = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split(' ');
            let name = parts.next().expect("type line names a metric").to_owned();
            let kind = parts.next().expect("type line names a kind").to_owned();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown exposition type: {line}"
            );
            types.insert(name, kind);
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments are emitted: {line}");
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line: series value");
        let value: u64 = value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        let base = name_and_labels
            .split('{')
            .next()
            .expect("series has a name")
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            types.contains_key(base),
            "series {name_and_labels} precedes its # TYPE declaration"
        );
        assert!(
            base.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "metric name out of alphabet: {base}"
        );
        series.insert(name_and_labels.to_owned(), value);
    }
    (series, types)
}

#[test]
fn metrics_exposition_is_valid_and_counters_are_monotone() {
    let dir = scratch("metrics");
    let server = ServeProc::start(&write_lib(&dir), &[]);

    let baseline = server.exchange("GET", "/metrics", None);
    assert_eq!(baseline.status, 200);
    assert!(
        baseline.head.to_ascii_lowercase().contains("text/plain; version=0.0.4"),
        "exposition content type: {}",
        baseline.head
    );
    let (before, baseline_types) = parse_exposition(&baseline.body);
    assert!(
        before.contains_key("netart_serve_queue_depth"),
        "queue-depth gauge is always exposed: {:?}",
        before.keys().collect::<Vec<_>>()
    );

    // Build-identity info metric and boot-time gauge are exposed from
    // the first scrape, before any request arrives.
    let build_info = format!(
        "netart_build_info{{version=\"{}\",git=\"unknown\"}}",
        env!("CARGO_PKG_VERSION")
    );
    assert_eq!(
        before.get(&build_info).copied(),
        Some(1),
        "build info series pinned: {:?}",
        before.keys().collect::<Vec<_>>()
    );
    assert_eq!(baseline_types.get("netart_build_info").map(String::as_str), Some("gauge"));
    assert!(
        before["netart_serve_start_time_seconds"] > 1_700_000_000,
        "start time is a plausible unix timestamp: {}",
        before["netart_serve_start_time_seconds"]
    );
    assert_eq!(
        baseline_types.get("netart_serve_start_time_seconds").map(String::as_str),
        Some("gauge")
    );

    let (net, cal, io) = chain_inputs(6);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body)).status, 200);
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body)).status, 200);

    let scrape = server.exchange("GET", "/metrics", None);
    assert_eq!(scrape.status, 200);
    let (after, types) = parse_exposition(&scrape.body);

    // The acceptance trio: request counter by outcome, queue gauge,
    // latency histogram.
    assert_eq!(after["netart_serve_requests_total{outcome=\"clean\"}"], 2);
    assert_eq!(after["netart_serve_cache_requests_total{result=\"hit\"}"], 1);
    assert_eq!(after["netart_serve_cache_requests_total{result=\"miss\"}"], 1);
    assert!(after.contains_key("netart_serve_queue_depth"));
    assert_eq!(types["netart_serve_request_latency_ns"], "histogram");
    assert_eq!(after["netart_serve_request_latency_ns_count"], 2);

    // Counters never go backwards between scrapes.
    for (name, value) in &before {
        if types.get(name.split('{').next().expect("name")).map(String::as_str)
            == Some("counter")
        {
            assert!(
                after.get(name).copied().unwrap_or(0) >= *value,
                "counter {name} went backwards"
            );
        }
    }

    // Histogram integrity: cumulative buckets are monotone in their
    // numeric `le` order and the +Inf bucket equals the _count.
    for (metric, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let mut buckets: Vec<(f64, u64)> = after
            .iter()
            .filter_map(|(name, value)| {
                let bound = name
                    .strip_prefix(&format!("{metric}_bucket{{le=\""))?
                    .strip_suffix("\"}")?;
                let bound = if bound == "+Inf" {
                    f64::INFINITY
                } else {
                    bound.parse().unwrap_or_else(|e| panic!("bad le bound {bound}: {e}"))
                };
                Some((bound, *value))
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN bounds"));
        assert!(!buckets.is_empty(), "{metric} exposes no buckets");
        let mut last = 0u64;
        for (bound, value) in &buckets {
            assert!(*value >= last, "{metric} le={bound} breaks cumulative monotonicity");
            last = *value;
        }
        let (top, inf) = buckets.last().expect("nonempty");
        assert!(top.is_infinite(), "{metric}: the last bucket must be +Inf");
        assert_eq!(
            *inf,
            after[&format!("{metric}_count")],
            "{metric}: +Inf bucket must equal the sample count"
        );
        assert!(after.contains_key(&format!("{metric}_sum")), "{metric}_sum missing");
    }

    // The windowed latency quantiles surface in /stats too.
    let after_stats = stats(&server);
    assert_eq!(after_stats.win_latency_count, 2);
    assert!(after_stats.win_latency_p50_ns > 0);
    assert!(after_stats.win_latency_p99_ns >= after_stats.win_latency_p50_ns);
    let _ = std::fs::remove_dir_all(dir);
}

/// Strips the wall-clock members (`latency_ns`, per-phase `wall_ns`)
/// from one access-log line, leaving only its deterministic identity.
fn strip_timings(line: &str) -> String {
    let doc = Json::parse(line).unwrap_or_else(|e| panic!("access line is not JSON: {e}: {line}"));
    let phases = doc
        .get("phases")
        .and_then(Json::as_arr)
        .map(|cells| {
            Json::Arr(
                cells
                    .iter()
                    .map(|p| {
                        Json::obj().with(
                            "name",
                            p.get("name").and_then(Json::as_str).unwrap_or_default(),
                        )
                    })
                    .collect(),
            )
        })
        .unwrap_or_else(|| Json::Arr(Vec::new()));
    let s = |name: &str| doc.get(name).and_then(Json::as_str).unwrap_or_default().to_owned();
    Json::obj()
        .with("rid", s("rid").as_str())
        .with("outcome", s("outcome").as_str())
        .with(
            "http_status",
            doc.get("http_status").and_then(Json::as_u64).unwrap_or(0),
        )
        .with("cache", s("cache").as_str())
        .with("artifact", s("artifact").as_str())
        .with(
            "deadline_cancelled",
            doc.get("deadline_cancelled").and_then(Json::as_bool).unwrap_or(false),
        )
        .with("phases", phases)
        .render()
}

#[test]
fn access_log_replays_deterministically_with_one_worker() {
    // The same request sequence against two fresh single-worker
    // servers must produce identical access logs once wall-clock
    // members are stripped: same rids, same outcomes, same artifacts,
    // same cache verdicts, same phase structure.
    let dir = scratch("accesslog");
    let lib = write_lib(&dir);
    let (net_a, cal_a, io_a) = chain_inputs(6);
    let (net_b, cal_b, io_b) = chain_inputs(9);
    let body_a = diagram_request(&net_a, &cal_a, Some(&io_a)).render_pretty();
    let body_b = diagram_request(&net_b, &cal_b, Some(&io_b)).render_pretty();

    let run = |log_name: &str| {
        let log = dir.join(log_name);
        let mut server = ServeProc::start(
            &lib,
            &["--workers", "1", "--access-log", &log.to_string_lossy()],
        );
        assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body_a)).status, 200);
        assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body_b)).status, 200);
        assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body_a)).status, 200);
        server.sigterm();
        let (code, _) = server.wait_exit();
        assert_eq!(code, Some(0));
        std::fs::read_to_string(&log).expect("access log written")
    };
    let first = run("first.jsonl");
    let second = run("second.jsonl");

    let normalize = |text: &str| -> Vec<String> { text.lines().map(strip_timings).collect() };
    let first = normalize(&first);
    assert_eq!(first, normalize(&second), "replay must be deterministic");

    assert_eq!(first.len(), 3, "one line per diagram request");
    for (k, line) in first.iter().enumerate() {
        assert!(
            line.contains(&format!("\"rid\":\"r{k:06}\"")),
            "rids are sequential: {line}"
        );
    }
    assert!(first[0].contains("\"cache\":\"miss\""), "{}", first[0]);
    assert!(first[2].contains("\"cache\":\"hit\""), "{}", first[2]);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_cancellation_names_the_breaching_request() {
    let dir = scratch("deadline-rid");
    let server = ServeProc::start(&write_lib(&dir), &[]);

    let (net, cal, io) = chain_inputs(60);
    let body = diagram_request(&net, &cal, Some(&io))
        .with("options", Json::obj().with("timeout_ms", 1u64))
        .render_pretty();
    let response = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(response.status, 200);
    assert!(
        response.body.contains("request r000000 deadline"),
        "the degradation names the breaching request id: {}",
        response.body
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigterm_flips_readiness_drains_and_exits_zero() {
    let dir = scratch("sigterm");
    let mut server = ServeProc::start(
        &write_lib(&dir),
        &["--workers", "1", "--drain-grace", "2000"],
    );

    // A completed request before the signal, so the drain summary has
    // something to count.
    let (net, cal, io) = chain_inputs(6);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body)).status, 200);

    // Hold one connection open across the signal: the server must
    // keep answering health probes while it drains instead of
    // slamming the door.
    let held = std::net::TcpStream::connect(&server.addr).expect("held connection");

    server.sigterm();

    // Readiness flips within the drain window...
    let deadline = Instant::now() + Duration::from_secs(3);
    let flipped = loop {
        match server.request("GET", "/readyz", None) {
            Ok(r) if r.status == 503 => break true,
            _ if Instant::now() > deadline => break false,
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert!(flipped, "readyz must answer 503 once draining");

    // ...while liveness stays green and *new* work is refused with
    // 503. (The input must be fresh: cached artifacts keep replaying
    // during drain, by design.)
    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    let (net2, cal2, io2) = chain_inputs(8);
    let fresh = diagram_request(&net2, &cal2, Some(&io2)).render_pretty();
    let refused = server.exchange("POST", "/v1/diagram", Some(&fresh));
    assert_eq!(refused.status, 503);
    assert_eq!(parse_report(&refused).status.as_str(), "failed");

    drop(held);
    let (code, rest) = server.wait_exit();
    assert_eq!(code, Some(0), "a signal-driven drain is a clean exit");
    assert!(
        rest.contains("drained cleanly"),
        "exit summary reports the drain: {rest:?}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Polls for `path` to appear and parses it as a blackbox dump.
fn wait_for_dump(path: &std::path::Path) -> BlackboxDump {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if !text.is_empty() {
                let doc = Json::parse(&text)
                    .unwrap_or_else(|e| panic!("blackbox file is not JSON: {e}: {text}"));
                return BlackboxDump::from_json(&doc)
                    .unwrap_or_else(|e| panic!("blackbox file fails the schema: {e}"));
            }
        }
        assert!(Instant::now() < deadline, "no blackbox dump at {}", path.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn debug_flight_endpoint_is_gated_behind_the_flag() {
    let dir = scratch("debugflight");
    let lib = write_lib(&dir);

    // Without the flag the endpoint does not exist.
    let closed = ServeProc::start(&lib, &[]);
    assert_eq!(closed.exchange("GET", "/debug/flight", None).status, 404);
    drop(closed);

    // With it, the live ring is inspectable: a parseable dump whose
    // records cover the request the server just answered.
    let open = ServeProc::start(&lib, &["--debug-endpoints"]);
    let (net, cal, io) = chain_inputs(6);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(open.exchange("POST", "/v1/diagram", Some(&body)).status, 200);

    let peek = open.exchange("GET", "/debug/flight", None);
    assert_eq!(peek.status, 200);
    let doc = Json::parse(&peek.body)
        .unwrap_or_else(|e| panic!("/debug/flight body is not JSON: {e}: {}", peek.body));
    let dump = BlackboxDump::from_json(&doc).expect("dump fits the blackbox schema");
    assert_eq!(dump.reason, "debug");
    assert!(!dump.records.is_empty(), "the ring saw the request's spans");
    assert!(
        dump.records.iter().any(|r| r.name == "serve.request"),
        "request span retained: {:?}",
        dump.records.iter().map(|r| r.name.as_str()).collect::<Vec<_>>()
    );
    // Peeking is not a request and does not disturb the ledger.
    assert_eq!(stats(&open).requests, 1);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigusr1_dumps_a_blackbox_that_round_trips_through_netart_blackbox() {
    let dir = scratch("sigusr1");
    // ServeProc does not pin the child's cwd, so the dump path must be
    // absolute.
    let dump_path = dir.join("blackbox.json");
    let mut server = ServeProc::start(
        &write_lib(&dir),
        &["--blackbox", &dump_path.to_string_lossy()],
    );

    let (net, cal, io) = chain_inputs(6);
    let body = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&body)).status, 200);

    server.signal("USR1");
    let dump = wait_for_dump(&dump_path);
    assert_eq!(dump.reason, "signal");
    assert_eq!(dump.rid, None, "an operator dump is not about one request");
    assert!(!dump.records.is_empty(), "the ring retained the request's spans");

    // The dump renders as a timeline through the subcommand.
    let rendered = std::process::Command::new(env!("CARGO_BIN_EXE_netart"))
        .args(["blackbox", &dump_path.to_string_lossy()])
        .output()
        .expect("netart blackbox runs");
    assert!(rendered.status.success(), "{rendered:?}");
    let text = String::from_utf8(rendered.stdout).expect("timeline is UTF-8");
    assert!(text.contains("blackbox: reason=signal"), "{text}");
    assert!(text.contains("serve.request"), "{text}");

    // The dump is an observation, not a disruption: the server still
    // serves and still drains cleanly.
    assert_eq!(server.exchange("GET", "/healthz", None).status, 200);
    server.sigterm();
    let (code, _) = server.wait_exit();
    assert_eq!(code, Some(0));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deadline_breach_leaves_a_blackbox_naming_the_request() {
    let dir = scratch("deadline-bb");
    let dump_path = dir.join("blackbox.json");
    let server = ServeProc::start(
        &write_lib(&dir),
        &["--blackbox", &dump_path.to_string_lossy()],
    );

    let (net, cal, io) = chain_inputs(60);
    let body = diagram_request(&net, &cal, Some(&io))
        .with("options", Json::obj().with("timeout_ms", 1u64))
        .render_pretty();
    let response = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(response.status, 200);
    assert_eq!(parse_report(&response).status.as_str(), "degraded");

    let dump = wait_for_dump(&dump_path);
    assert_eq!(dump.reason, "deadline");
    assert_eq!(dump.rid.as_deref(), Some("r000000"), "dump names the breaching request");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn memory_budget_rejects_over_budget_submissions_and_recovers() {
    let dir = scratch("membudget");
    let server = ServeProc::start(
        &write_lib(&dir),
        &["--workers", "1", "--max-body", "1048576", "--memory-budget", "128k"],
    );

    // An in-budget request computes normally.
    let (net, cal, io) = chain_inputs(4);
    let small = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&small)).status, 200);

    // A body that fits the admission window but whose parse outgrows
    // the governor's remaining room: refused with 503 + Retry-After,
    // not 422 — the verdict is on the moment, not the input.
    let (net, cal, io) = chain_inputs(2000);
    let big = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert!(big.len() < 128 * 1024, "must pass admission: {}", big.len());
    let refused = server.exchange("POST", "/v1/diagram", Some(&big));
    assert_eq!(refused.status, 503);
    assert!(refused.has_header("Retry-After"), "{}", refused.head);
    assert_eq!(parse_report(&refused).status.as_str(), "failed");

    // A request whose *declared* length alone exceeds the budget (but
    // not --max-body) is bounced at admission, before buffering — the
    // verdict arrives off the headers, so only headers are sent here.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(&server.addr).expect("connect");
        stream
            .write_all(
                b"POST /v1/diagram HTTP/1.1\r\nHost: netart\r\nContent-Length: 307200\r\n\r\n",
            )
            .expect("write headers");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read admission verdict");
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(raw.to_ascii_lowercase().contains("retry-after:"), "{raw}");
    }

    // Both refusals surface on the mem-rejection counter.
    let scrape = server.exchange("GET", "/metrics", None);
    assert_eq!(scrape.status, 200);
    let (series, types) = parse_exposition(&scrape.body);
    assert_eq!(
        types.get("netart_serve_mem_rejections_total").map(String::as_str),
        Some("counter")
    );
    assert!(
        series.get("netart_serve_mem_rejections_total").copied().unwrap_or(0) >= 2,
        "rejections counted: {series:?}"
    );

    // The lease died with the refused requests: fresh in-budget work
    // still computes.
    let (net, cal, io) = chain_inputs(6);
    let fresh = diagram_request(&net, &cal, Some(&io)).render_pretty();
    assert_eq!(server.exchange("POST", "/v1/diagram", Some(&fresh)).status, 200);
    let _ = std::fs::remove_dir_all(dir);
}
