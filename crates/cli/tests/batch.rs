//! Integration tests for `netart batch`: clean runs over directories
//! and manifest files, mixed-outcome exit codes, `--jobs N` determinism
//! (manifest and diagram bytes), and graceful drain on SIGTERM.
//!
//! The determinism and signal cases drive the real `netart` binary via
//! `CARGO_BIN_EXE_netart`; the input-collection error cases call
//! [`netart_cli::run_batch`] in-process.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use netart::obs::{BatchManifest, Json, JobStatus, BATCH_SCHEMA_VERSION};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netart-batch-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Writes the module library plus `count` clean three-file jobs
/// (`job_<i>.net/.cal/.io`) into `dir`; returns the library path.
fn write_fixture(dir: &Path, count: usize) -> PathBuf {
    let lib = dir.join("lib");
    fs::create_dir_all(&lib).unwrap();
    fs::write(lib.join("inv.qto"), "module inv 40 20\nin a 0 10\nout y 40 10\n").unwrap();
    for i in 0..count {
        fs::write(
            dir.join(format!("job_{i:03}.net")),
            "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n",
        )
        .unwrap();
        fs::write(dir.join(format!("job_{i:03}.cal")), "u0 inv\nu1 inv\n").unwrap();
        fs::write(dir.join(format!("job_{i:03}.io")), "in in\n").unwrap();
    }
    lib
}

fn netart_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_netart"))
}

fn load_manifest(path: &Path) -> BatchManifest {
    let text = fs::read_to_string(path).expect("manifest written");
    let json = Json::parse(&text).expect("manifest is valid JSON");
    BatchManifest::from_json(&json).expect("manifest matches the schema")
}

#[test]
fn directory_batch_runs_every_job_clean() {
    let dir = scratch("dir");
    let lib = write_fixture(&dir, 3);
    let out = dir.join("out");
    let manifest_path = dir.join("manifest.json");
    let status = netart_bin()
        .args(["batch", "-L"])
        .arg(&lib)
        .args(["--jobs", "2", "--out-dir"])
        .arg(&out)
        .arg("--report-json")
        .arg(&manifest_path)
        .arg(&dir)
        .status()
        .expect("netart batch runs");
    assert_eq!(status.code(), Some(0), "all-clean batch exits 0");
    let text = fs::read_to_string(&manifest_path).expect("manifest written");
    assert!(
        text.contains(&format!("\"schema_version\": {BATCH_SCHEMA_VERSION}")),
        "{text}"
    );
    let manifest = load_manifest(&manifest_path);
    assert_eq!(manifest.jobs.len(), 3);
    assert!(manifest.jobs.iter().all(|j| j.status == JobStatus::Ok));
    assert!(
        manifest.jobs.iter().all(|j| j.report.is_some()),
        "each job record embeds its run report"
    );
    for i in 0..3 {
        assert!(out.join(format!("job_{i:03}.esc")).is_file());
        assert!(out.join(format!("job_{i:03}.svg")).is_file());
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn manifest_file_mixes_explicit_and_sibling_lines() {
    let dir = scratch("manifest");
    let lib = write_fixture(&dir, 2);
    // Line 1 spells the files out; line 2 uses the sibling convention.
    fs::write(
        dir.join("jobs.list"),
        "# comment\njob_000.net job_000.cal job_000.io\njob_001.net\n",
    )
    .unwrap();
    let out = dir.join("out");
    let manifest_path = dir.join("manifest.json");
    let status = netart_bin()
        .args(["batch", "-L"])
        .arg(&lib)
        .arg("--out-dir")
        .arg(&out)
        .arg("--report-json")
        .arg(&manifest_path)
        .arg(dir.join("jobs.list"))
        .status()
        .expect("netart batch runs");
    assert_eq!(status.code(), Some(0));
    assert_eq!(load_manifest(&manifest_path).jobs.len(), 2);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn failing_job_exits_two_and_the_rest_complete() {
    let dir = scratch("mixed");
    let lib = write_fixture(&dir, 2);
    // A malformed net-list record: a permanent parse failure, no retry.
    fs::write(dir.join("job_bad.net"), "only two\n").unwrap();
    fs::write(dir.join("job_bad.cal"), "u0 inv\n").unwrap();
    let out = dir.join("out");
    let manifest_path = dir.join("manifest.json");
    let status = netart_bin()
        .args(["batch", "-L"])
        .arg(&lib)
        .args(["--jobs", "2", "--out-dir"])
        .arg(&out)
        .arg("--report-json")
        .arg(&manifest_path)
        .arg(&dir)
        .status()
        .expect("netart batch runs");
    assert_eq!(status.code(), Some(2), "a failed job degrades the batch");
    let manifest = load_manifest(&manifest_path);
    assert_eq!(manifest.jobs.len(), 3);
    let bad = manifest
        .jobs
        .iter()
        .find(|j| j.input.ends_with("job_bad.net"))
        .expect("failed job recorded");
    assert_eq!(bad.status, JobStatus::Failed);
    assert_eq!(bad.attempts, 1, "permanent failures are not retried");
    assert!(bad.error.is_some());
    assert_eq!(manifest.summary.ok, 2, "clean jobs still complete");
    assert!(out.join("job_000.esc").is_file());
    assert!(out.join("job_001.esc").is_file());
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn parallel_batch_matches_serial_byte_for_byte() {
    let dir = scratch("determinism");
    let lib = write_fixture(&dir, 6);
    let mut manifests = Vec::new();
    for jobs in ["1", "4"] {
        let out = dir.join(format!("out-{jobs}"));
        let manifest_path = dir.join(format!("manifest-{jobs}.json"));
        let status = netart_bin()
            .args(["batch", "-L"])
            .arg(&lib)
            .args(["--jobs", jobs, "--out-dir"])
            .arg(&out)
            .arg("--report-json")
            .arg(&manifest_path)
            .arg(&dir)
            .status()
            .expect("netart batch runs");
        assert_eq!(status.code(), Some(0));
        manifests.push(load_manifest(&manifest_path));
    }
    let serial = manifests[0].normalized();
    let mut parallel = manifests[1].normalized();
    // Worker count is a run parameter, not an outcome.
    assert_eq!(parallel.jobs_in_flight, 4);
    parallel.jobs_in_flight = serial.jobs_in_flight;
    assert_eq!(
        serial.to_json_string(),
        parallel.to_json_string(),
        "normalized manifests are byte-identical across --jobs"
    );
    for i in 0..6 {
        for ext in ["esc", "svg"] {
            let name = format!("job_{i:03}.{ext}");
            let a = fs::read(dir.join("out-1").join(&name)).expect("serial output");
            let b = fs::read(dir.join("out-4").join(&name)).expect("parallel output");
            assert_eq!(a, b, "{name} differs between --jobs 1 and --jobs 4");
        }
    }
    let _ = fs::remove_dir_all(dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_with_a_complete_manifest() {
    let dir = scratch("sigterm");
    let lib = write_fixture(&dir, 200);
    let out = dir.join("out");
    let manifest_path = dir.join("manifest.json");
    let mut child = netart_bin()
        .args(["batch", "-L"])
        .arg(&lib)
        .args(["--jobs", "1", "--out-dir"])
        .arg(&out)
        .arg("--report-json")
        .arg(&manifest_path)
        .arg(&dir)
        .spawn()
        .expect("netart batch starts");
    std::thread::sleep(std::time::Duration::from_millis(120));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    let status = child.wait().expect("batch exits");
    let manifest = load_manifest(&manifest_path);
    // The manifest is complete whatever the timing: one record per job.
    assert_eq!(manifest.jobs.len(), 200);
    if manifest.drained {
        assert!(
            manifest.summary.skipped > 0,
            "queued jobs were recorded as skipped"
        );
        assert_eq!(status.code(), Some(2), "a drained batch exits 2");
    } else {
        // The batch won the race and finished before the signal; the
        // drain path itself is covered by the engine's unit tests.
        assert_eq!(status.code(), Some(0));
    }
    // Atomic writes: no partial outputs survive, whatever was cut off.
    for entry in fs::read_dir(&out).expect("out dir") {
        let path = entry.unwrap().path();
        assert!(
            path.extension().is_some_and(|e| e == "esc" || e == "svg"),
            "no temp or partial file left behind: {}",
            path.display()
        );
    }
    // Every emitted diagram is complete enough to re-parse as text.
    for job in manifest.jobs.iter().filter(|j| j.status == JobStatus::Ok) {
        let stem = Path::new(&job.input).file_stem().unwrap().to_string_lossy();
        let esc = out.join(format!("{stem}.esc"));
        assert!(esc.is_file(), "ok job {} has its diagram", job.input);
    }
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn duplicate_output_stems_are_rejected_up_front() {
    let dir = scratch("dupstem");
    let _lib = write_fixture(&dir, 1);
    let other = dir.join("other");
    fs::create_dir_all(&other).unwrap();
    fs::write(other.join("job_000.net"), "n0 u0 y\nn0 u1 a\n").unwrap();
    fs::write(other.join("job_000.cal"), "u0 inv\nu1 inv\n").unwrap();
    let argv: Vec<String> = [
        "-L".to_owned(),
        dir.join("lib").to_string_lossy().into_owned(),
        dir.join("job_000.net").to_string_lossy().into_owned(),
        other.join("job_000.net").to_string_lossy().into_owned(),
    ]
    .to_vec();
    let err = netart_cli::run_batch(&argv).expect_err("colliding stems rejected");
    assert!(err.to_string().contains("job_000"), "{err}");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn missing_call_sibling_is_rejected_up_front() {
    let dir = scratch("nocal");
    let lib = write_fixture(&dir, 1);
    fs::remove_file(dir.join("job_000.cal")).unwrap();
    let argv: Vec<String> = [
        "-L".to_owned(),
        lib.to_string_lossy().into_owned(),
        dir.join("job_000.net").to_string_lossy().into_owned(),
    ]
    .to_vec();
    let err = netart_cli::run_batch(&argv).expect_err("missing .cal rejected");
    assert!(err.to_string().contains(".cal"), "{err}");
    let _ = fs::remove_dir_all(dir);
}
