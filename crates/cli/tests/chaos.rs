//! Deterministic chaos suite: sweeps injected faults (site × kind)
//! through the full `netart` pipeline under `--input-policy repair`
//! and asserts the robustness invariants:
//!
//! 1. no panic escapes a phase boundary,
//! 2. the run degrades (exit 2) instead of failing (exit 1),
//! 3. the armed fault actually fired at the expected site,
//! 4. the fault surfaces as a degradation in the machine-readable
//!    run report (`is_clean: false`),
//! 5. the emitted ESCHER diagram re-parses and its routed subset
//!    passes the structural checker.
//!
//! Only compiled with `--features fault-injection` (a `required-features`
//! test target); the default build carries no fault-point overhead.

mod common;

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;

use netart::diagram::escher;
use netart::netlist::doctor::{self, InputPolicy};
use netart::netlist::Library;
use netart::obs::{BatchManifest, JobStatus, Json, ServeReport};
use netart_cli::{run_batch, run_netart};

/// Serialises cases: the fault registry is process-global.
static GUARD: Mutex<()> = Mutex::new(());

const MODULE_SRC: &str = "module inv 40 20\nin a 0 10\nout y 40 10\n";
const NET_SRC: &str = "n0 u0 y\nn0 u1 a\nnin root in\nnin u0 a\n";
const CALL_SRC: &str = "u0 inv\nu1 inv\n";
const IO_SRC: &str = "in in\n";

const KINDS: [&str; 4] = ["panic", "error", "budget-exhaust", "garbage-output"];

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netart-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_inputs(dir: &Path) -> (String, String, String, String) {
    let lib = dir.join("lib");
    fs::create_dir_all(&lib).unwrap();
    fs::write(lib.join("inv.qto"), MODULE_SRC).unwrap();
    let nets = dir.join("design.net");
    fs::write(&nets, NET_SRC).unwrap();
    let calls = dir.join("design.call");
    fs::write(&calls, CALL_SRC).unwrap();
    let io = dir.join("design.io");
    fs::write(&io, IO_SRC).unwrap();
    (
        lib.to_string_lossy().into_owned(),
        nets.to_string_lossy().into_owned(),
        calls.to_string_lossy().into_owned(),
        io.to_string_lossy().into_owned(),
    )
}

/// The pristine fixture network, for re-parsing the emitted diagram.
fn reference_network() -> netart::netlist::Network {
    let mut lib = Library::new();
    let (template, _) =
        doctor::doctor_module(MODULE_SRC, InputPolicy::Strict).expect("clean module");
    lib.add_template(template).expect("unique template");
    doctor::doctor_network(lib, NET_SRC, CALL_SRC, Some(IO_SRC), InputPolicy::Strict)
        .expect("clean fixture")
        .0
}

/// Runs one `netart` invocation with `spec` armed and asserts every
/// chaos invariant. `site` is the site expected to have fired.
fn case(spec: &str, site: &str) {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    netart_fault::disarm_all();
    let tag = spec.replace([':', '.', ','], "-");
    let dir = scratch(&tag);
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    let report = dir.join("report.json").to_string_lossy().into_owned();

    let result = catch_unwind(AssertUnwindSafe(|| {
        run_netart(&argv(&[
            "--input-policy",
            "repair",
            "--inject",
            spec,
            "--report-json",
            &report,
            "-L",
            &lib,
            "-o",
            &out,
            &nets,
            &calls,
            &io,
        ]))
    }));
    // 1. No panic escapes a phase boundary.
    let run = result.unwrap_or_else(|_| panic!("{spec}: panic escaped the pipeline"));
    // 2. Under `repair` an injected fault degrades the run, never
    //    fails it outright.
    let run = run.unwrap_or_else(|e| panic!("{spec}: hard failure `{e}`"));
    // 3. The armed fault fired at the expected site.
    let fired = netart_fault::fired();
    assert!(
        fired.iter().any(|s| s.starts_with(site)),
        "{spec}: site `{site}` never fired (fired: {fired:?})"
    );
    // 4. ... and surfaced as a degradation in the run report.
    assert!(run.degraded, "{spec}: fault fired but the run claims clean");
    assert_eq!(run.exit_code(), ExitCode::from(2), "{spec}");
    let doc = fs::read_to_string(&report).expect("report written");
    assert!(doc.contains("\"is_clean\": false"), "{spec}: {doc}");
    assert!(
        doc.contains("\"kind\""),
        "{spec}: no degradation records: {doc}"
    );
    // 5. The emitted diagram re-parses and its routed subset passes
    //    the structural checker.
    netart_fault::disarm_all();
    let esc = fs::read_to_string(dir.join("out.esc")).expect("diagram written");
    let diagram = escher::parse_diagram(reference_network(), &esc)
        .unwrap_or_else(|e| panic!("{spec}: emitted diagram does not re-parse: {e}"));
    let check = diagram.check();
    assert!(check.is_ok(), "{spec}: structural check failed");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn chaos_parse_sites() {
    for kind in KINDS {
        case(&format!("parse.network:1:{kind}"), "parse.network");
        case(&format!("parse.module:1:{kind}"), "parse.module");
        // The memory governor's charge point: a fired fault simulates
        // an allocation refusal (ND015) even under an unlimited
        // budget, and recovery retries against the burned-out site.
        case(&format!("parse.alloc:1:{kind}"), "parse.alloc");
    }
}

#[test]
fn chaos_place_sites() {
    for site in [
        "place.partition",
        "place.module_place",
        "place.cluster",
        "place.gravity",
        "place.terminal_place",
    ] {
        for kind in KINDS {
            case(&format!("{site}:1:{kind}"), site);
        }
    }
}

#[test]
fn chaos_route_net_site() {
    for kind in KINDS {
        case(&format!("route.net:1:{kind}"), "route.net");
    }
}

#[test]
fn chaos_salvage_sites() {
    // The salvage stages are unreachable on a healthy run, so compose:
    // starve the net's first-pass budget to force it into the cascade,
    // then fault the stage under test.
    for kind in KINDS {
        case(
            &format!("route.net:1:budget-exhaust,route.salvage.ripup:1:{kind}"),
            "route.salvage.ripup",
        );
        // An `error` at rip-up skips that stage, guaranteeing the Lee
        // fallback actually runs (a successful rip-up would shadow it).
        case(
            &format!(
                "route.net:1:budget-exhaust,route.salvage.ripup:1:error,\
                 route.salvage.lee:1:{kind}"
            ),
            "route.salvage.lee",
        );
    }
}

#[test]
fn chaos_emit_site() {
    for kind in KINDS {
        case(&format!("emit.escher:1:{kind}"), "emit.escher");
    }
}

/// Runs a one-job `netart batch` in-process with `spec` armed
/// (`--jobs 1` so fired-count attribution is unambiguous) and asserts
/// the shared batch invariants: no panic escapes the engine, the
/// written manifest re-parses, and it carries exactly one record.
fn batch_case(spec: &str) -> (netart_cli::RunOutput, BatchManifest) {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    netart_fault::disarm_all();
    let tag = format!("batch-{}", spec.replace([':', '.', ','], "-"));
    let dir = scratch(&tag);
    let (lib, nets, _calls, _io) = write_inputs(&dir);
    // The sibling convention wants `<stem>.cal` next to the net-list.
    fs::copy(dir.join("design.call"), dir.join("design.cal")).unwrap();
    let out_dir = dir.join("out").to_string_lossy().into_owned();
    let manifest_path = dir.join("manifest.json");

    let result = catch_unwind(AssertUnwindSafe(|| {
        run_batch(&argv(&[
            "--input-policy",
            "repair",
            "--inject",
            spec,
            "--jobs",
            "1",
            "-L",
            &lib,
            "--out-dir",
            &out_dir,
            "--report-json",
            &manifest_path.to_string_lossy(),
            &nets,
        ]))
    }));
    let run = result.unwrap_or_else(|_| panic!("{spec}: panic escaped the batch engine"));
    let run = run.unwrap_or_else(|e| panic!("{spec}: batch failed outright: {e}"));
    let text = fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("{spec}: manifest not written: {e}"));
    let manifest = BatchManifest::from_json(
        &Json::parse(&text).unwrap_or_else(|e| panic!("{spec}: manifest not JSON: {e}")),
    )
    .unwrap_or_else(|e| panic!("{spec}: manifest fails the schema: {e}"));
    assert_eq!(manifest.jobs.len(), 1, "{spec}: one record per input");
    netart_fault::disarm_all();
    let _ = fs::remove_dir_all(dir);
    (run, manifest)
}

#[test]
fn chaos_batch_worker_isolation_retries_engine_faults() {
    // One injected fault at the engine's per-attempt site: attempt 1
    // fails transiently (a panic kind must not kill the worker),
    // attempt 2 runs on a burned-out site and succeeds.
    for kind in KINDS {
        let spec = format!("engine.job:1:{kind}");
        let (run, manifest) = batch_case(&spec);
        let job = &manifest.jobs[0];
        assert_eq!(job.status, JobStatus::Ok, "{spec}: {:?}", job.error);
        assert_eq!(job.attempts, 2, "{spec}: retried exactly once");
        assert!(!run.degraded, "{spec}: a recovered retry is a clean job");
    }
}

#[test]
fn chaos_batch_quarantines_a_poison_job() {
    // A fault on every attempt (default max-attempts is 3; each armed
    // spec burns out after firing once, so three specs cover three
    // attempts): the circuit breaker must quarantine instead of
    // retrying forever.
    let (run, manifest) = batch_case("engine.job:1,engine.job:1,engine.job:1");
    let job = &manifest.jobs[0];
    assert_eq!(job.status, JobStatus::Quarantined);
    assert_eq!(job.attempts, 3);
    assert!(job.error.is_some());
    assert!(run.degraded, "a quarantined job degrades the batch (exit 2)");
}

#[test]
fn chaos_batch_pipeline_sites() {
    // Faults inside the per-job pipeline, from parse to emit. A panic
    // during parse is transient (retried against the burned-out site);
    // a routing error degrades the job through the salvage cascade; a
    // garbage emit is caught by the always-on re-parse check.
    let cases: [(&str, JobStatus, u32); 3] = [
        ("parse.network:1:panic", JobStatus::Ok, 2),
        ("route.net:1:error", JobStatus::Degraded, 1),
        ("emit.escher:1:garbage-output", JobStatus::Degraded, 1),
    ];
    for (spec, status, attempts) in cases {
        let (run, manifest) = batch_case(spec);
        let job = &manifest.jobs[0];
        assert_eq!(job.status, status, "{spec}: {:?}", job.error);
        assert_eq!(job.attempts, attempts, "{spec}");
        assert_eq!(
            run.degraded,
            status != JobStatus::Ok,
            "{spec}: exit code mirrors the job status"
        );
    }
}

#[test]
fn chaos_batch_manifest_aggregation_survives_a_panic() {
    // The fault sits after every job has finished, in the manifest
    // build itself: the batch must still write a complete manifest.
    let (run, manifest) = batch_case("engine.manifest:1:panic");
    assert_eq!(manifest.jobs[0].status, JobStatus::Ok);
    assert!(!run.degraded, "the aggregation fault is contained");
}

/// Parses a serve response body as a [`ServeReport`].
fn serve_report(body: &str) -> ServeReport {
    ServeReport::from_json(&Json::parse(body).unwrap_or_else(|e| panic!("not JSON: {e}: {body}")))
        .unwrap_or_else(|e| panic!("not a serve report: {e}: {body}"))
}

#[test]
fn chaos_serve_request_faults_answer_500_and_the_listener_survives() {
    // The fault registry lives in the spawned server, not this
    // process, so no GUARD is needed: each case boots its own binary
    // with the spec armed via `--inject`.
    for kind in KINDS {
        let spec = format!("serve.request:1:{kind}");
        let dir = common::scratch(&format!("chaos-request-{kind}"));
        let lib = common::write_lib(&dir);
        let server = common::ServeProc::start(&lib, &["--inject", &spec]);
        let (net, cal, io) = common::chain_inputs(3);
        let body = common::diagram_request(&net, &cal, Some(&io)).render_pretty();

        // The armed fault trips inside the worker: whatever the kind
        // (a panic included — the worker's catch_unwind contains it),
        // the client gets a structured 500, not a dropped connection.
        let faulted = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(faulted.status, 500, "{spec}: {}", faulted.body);
        let report = serve_report(&faulted.body);
        assert_eq!(report.status.as_str(), "failed", "{spec}");
        assert!(report.error.is_some(), "{spec}: failure carries a message");

        // The listener survived, the faulted result was never cached,
        // and the burned-out one-shot site lets the retry succeed.
        assert_eq!(server.exchange("GET", "/healthz", None).status, 200, "{spec}");
        let retry = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(retry.status, 200, "{spec}: {}", retry.body);
        assert_ne!(serve_report(&retry.body).status.as_str(), "failed", "{spec}");
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn chaos_serve_cache_insert_faults_degrade_to_recompute() {
    // `serve.cache` fires on both cache calls; `nth:2` lands the
    // fault on the first request's *insert*. The contract: the insert
    // is lost, nothing else — the in-hand response is unaffected, the
    // next identical request recomputes (and caches), replays are
    // still byte-identical.
    for kind in KINDS {
        let spec = format!("serve.cache:2:{kind}");
        let dir = common::scratch(&format!("chaos-cacheput-{kind}"));
        let lib = common::write_lib(&dir);
        let server = common::ServeProc::start(&lib, &["--inject", &spec]);
        let (net, cal, io) = common::chain_inputs(3);
        let body = common::diagram_request(&net, &cal, Some(&io)).render_pretty();

        let first = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(first.status, 200, "{spec}: {}", first.body);
        let first = serve_report(&first.body);
        assert_eq!(first.cache.as_str(), "miss", "{spec}");

        let second = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(second.status, 200, "{spec}: {}", second.body);
        let second = serve_report(&second.body);
        assert_eq!(
            second.cache.as_str(),
            "miss",
            "{spec}: the faulted insert must have been dropped"
        );
        assert_eq!(second.escher, first.escher, "{spec}: recompute is deterministic");

        let third = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(third.status, 200, "{spec}: {}", third.body);
        let third = serve_report(&third.body);
        assert_eq!(third.cache.as_str(), "hit", "{spec}: the retry's insert stuck");
        assert_eq!(third.escher, first.escher, "{spec}: byte-identical replay");
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn chaos_serve_cache_lookup_panic_degrades_to_a_miss() {
    // `nth:3` lands a panic on the *second* request's lookup, with the
    // cache already warm: the lookup degrades to a miss (recompute),
    // it does not crash the connection or serve garbage.
    let dir = common::scratch("chaos-cacheget");
    let lib = common::write_lib(&dir);
    let server = common::ServeProc::start(&lib, &["--inject", "serve.cache:3:panic"]);
    let (net, cal, io) = common::chain_inputs(3);
    let body = common::diagram_request(&net, &cal, Some(&io)).render_pretty();

    let first = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(first.status, 200, "{}", first.body);
    let first = serve_report(&first.body);
    assert_eq!(first.cache.as_str(), "miss");

    let second = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(second.status, 200, "{}", second.body);
    let second = serve_report(&second.body);
    assert_eq!(
        second.cache.as_str(),
        "miss",
        "a panicking lookup is a miss, not a crash"
    );
    assert_eq!(second.escher, first.escher);

    let third = server.exchange("POST", "/v1/diagram", Some(&body));
    assert_eq!(third.status, 200, "{}", third.body);
    assert_eq!(serve_report(&third.body).cache.as_str(), "hit");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn chaos_serve_telemetry_faults_answer_metrics_unavailable() {
    // A fault on the `/metrics` read path answers a plain-text 503
    // and leaves the server (and the registry) intact: the burned-out
    // one-shot site lets the next scrape succeed.
    for kind in KINDS {
        let spec = format!("serve.telemetry:1:{kind}");
        let dir = common::scratch(&format!("chaos-metrics-{kind}"));
        let lib = common::write_lib(&dir);
        let server = common::ServeProc::start(&lib, &["--inject", &spec]);

        let faulted = server.exchange("GET", "/metrics", None);
        assert_eq!(faulted.status, 503, "{spec}: {}", faulted.body);
        assert!(
            faulted.body.contains("metrics unavailable"),
            "{spec}: {}",
            faulted.body
        );

        let retry = server.exchange("GET", "/metrics", None);
        assert_eq!(retry.status, 200, "{spec}");
        assert!(
            retry.body.contains("netart_serve_telemetry_faults_total 1"),
            "{spec}: the lost scrape is itself counted: {}",
            retry.body
        );
        assert_eq!(server.exchange("GET", "/healthz", None).status, 200, "{spec}");
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn chaos_serve_telemetry_record_faults_never_drop_the_request() {
    // The same site guards the per-request recording path: a fault
    // there loses the sample, never the request being observed.
    for kind in KINDS {
        let spec = format!("serve.telemetry:1:{kind}");
        let dir = common::scratch(&format!("chaos-record-{kind}"));
        let lib = common::write_lib(&dir);
        let server = common::ServeProc::start(&lib, &["--inject", &spec]);
        let (net, cal, io) = common::chain_inputs(3);
        let body = common::diagram_request(&net, &cal, Some(&io)).render_pretty();

        let response = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(response.status, 200, "{spec}: {}", response.body);
        assert_ne!(serve_report(&response.body).status.as_str(), "failed", "{spec}");

        let scrape = server.exchange("GET", "/metrics", None);
        assert_eq!(scrape.status, 200, "{spec}");
        assert!(
            scrape.body.contains("netart_serve_telemetry_faults_total 1"),
            "{spec}: the lost sample is counted: {}",
            scrape.body
        );
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn chaos_flight_dump_faults_degrade_without_touching_the_response() {
    // A fault on the blackbox write path (`obs.flight`) loses the
    // post-mortem dump, nothing else: the deadline-breached request
    // still answers 200/degraded, the loss is named as a
    // `flight_dump_failed` degradation in that response's own run
    // report, and the next incident dumps fine once the one-shot site
    // has burned out.
    for kind in KINDS {
        let spec = format!("obs.flight:1:{kind}");
        let dir = common::scratch(&format!("chaos-flight-{kind}"));
        let lib = common::write_lib(&dir);
        let dump_path = dir.join("blackbox.json");
        let server = common::ServeProc::start(
            &lib,
            &["--inject", &spec, "--blackbox", &dump_path.to_string_lossy()],
        );
        let (net, cal, io) = common::chain_inputs(60);
        let body = common::diagram_request(&net, &cal, Some(&io))
            .with("options", Json::obj().with("timeout_ms", 1u64))
            .render_pretty();

        let breached = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(breached.status, 200, "{spec}: {}", breached.body);
        assert_eq!(serve_report(&breached.body).status.as_str(), "degraded", "{spec}");
        assert!(
            breached.body.contains("flight_dump_failed"),
            "{spec}: the lost dump is named in the run report: {}",
            breached.body
        );
        assert!(!dump_path.exists(), "{spec}: the faulted dump must not half-write");

        // The listener survived, and the next breach dumps through the
        // burned-out site.
        assert_eq!(server.exchange("GET", "/healthz", None).status, 200, "{spec}");
        let again = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(again.status, 200, "{spec}: {}", again.body);
        assert!(
            !again.body.contains("flight_dump_failed"),
            "{spec}: the second dump succeeds: {}",
            again.body
        );
        assert!(dump_path.exists(), "{spec}: the recovered dump was written");
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn env_var_arms_the_registry() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    netart_fault::disarm_all();
    let dir = scratch("envarm");
    let (lib, nets, calls, io) = write_inputs(&dir);
    let out = dir.join("out").to_string_lossy().into_owned();
    std::env::set_var("NETART_INJECT", "route.net:1:error");
    let run = run_netart(&argv(&[
        "--input-policy",
        "repair",
        "-L",
        &lib,
        "-o",
        &out,
        &nets,
        &calls,
        &io,
    ]));
    std::env::remove_var("NETART_INJECT");
    let run = run.expect("env-armed fault degrades, not fails");
    assert!(run.degraded, "{}", run.message);
    assert!(netart_fault::fired().iter().any(|s| s.starts_with("route.net")));
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn chaos_serve_spawn_faults_burn_a_restart_and_the_fleet_recovers() {
    // A fault at `serve.spawn` fails the shard's *first* spawn
    // attempt. The supervisor treats it like any other death: backoff,
    // respawn (the one-shot site is burned out), and the fleet comes
    // up one restart in. Every kind is a spawn failure here — a panic
    // inside the site is contained by the supervisor's catch_unwind.
    for kind in KINDS {
        let spec = format!("serve.spawn:1:{kind}");
        let dir = common::scratch(&format!("chaos-spawn-{kind}"));
        let lib = common::write_lib(&dir);
        let server = common::ServeProc::start(&lib, &["--shards", "1", "--inject", &spec]);

        // The listener was bound by the supervisor before any spawn,
        // so this request queues in the backlog until the respawned
        // worker accepts — no connection refused, no dropped bytes.
        let (net, cal, io) = common::chain_inputs(3);
        let body = common::diagram_request(&net, &cal, Some(&io)).render_pretty();
        let response = server.exchange("POST", "/v1/diagram", Some(&body));
        assert_eq!(response.status, 200, "{spec}: {}", response.body);
        assert_eq!(server.exchange("GET", "/healthz", None).status, 200, "{spec}");

        // The burned first attempt is on the books as a restart.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let metrics = server.exchange("GET", "/metrics", None).body;
            if metrics.contains("netart_serve_shard_restarts_total 1") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "{spec}: restart never counted: {metrics}");
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let _ = fs::remove_dir_all(dir);
    }
}
