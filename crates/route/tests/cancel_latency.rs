//! Cancellation-latency tests: a cancelled route must return
//! *quickly*, not merely eventually. The serve deadline contract
//! depends on this — the watchdog trips a request's token and expects
//! the router to surface within a small bound even if the run is in
//! the middle of the salvage cascade (rip-up retry, Lee fallback).

use std::time::{Duration, Instant};

use netart_diagram::Diagram;
use netart_place::{Pablo, PlaceConfig};
use netart_route::{CancelToken, Eureka, RouteConfig};
use netart_workloads::{random_network, string_chain, RandomSpec};

/// The router must surface within this long of the token tripping.
/// Generous for CI machines; the point is "milliseconds, not the
/// seconds an escalated salvage budget would allow".
const LATENCY_BOUND: Duration = Duration::from_secs(2);

/// A congested workload where salvage genuinely runs: many nets with
/// fanout over few modules, placed tightly.
fn congested_diagram() -> Diagram {
    let net = random_network(&RandomSpec {
        modules: 10,
        nets: 16,
        max_fanout: 3,
        system_terminals: 2,
        seed: 7,
    });
    let placement = Pablo::new(PlaceConfig::strings().with_module_spacing(1)).place(&net);
    Diagram::new(net, placement)
}

#[test]
fn mid_run_cancellation_returns_within_the_bound() {
    let mut diagram = congested_diagram();
    let token = CancelToken::new();
    let mut config = RouteConfig::default().with_cancel(token.clone());
    config.retry_failed = true;

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
            Instant::now()
        })
    };
    let report = Eureka::new(config).route(&mut diagram);
    let returned = Instant::now();
    let cancelled_at = canceller.join().expect("canceller thread");

    assert!(
        returned.saturating_duration_since(cancelled_at) < LATENCY_BOUND,
        "router took {:?} after cancellation",
        returned.saturating_duration_since(cancelled_at)
    );
    // The report stays complete: every net resolves as routed or
    // failed, whatever the token did.
    assert_eq!(
        report.routed.len() + report.failed.len(),
        diagram.network().net_count()
    );
}

#[test]
fn cancellation_during_salvage_skips_the_remaining_cascade() {
    // A pre-cancelled token with salvage enabled: pick_victims,
    // rip-up and the Lee fallback are all downstream of the
    // cancellation polls, so the run must fail every net fast instead
    // of burning 4x-escalated budgets per net.
    let mut diagram = congested_diagram();
    let token = CancelToken::new();
    token.cancel();
    let mut config = RouteConfig::default().with_cancel(token);
    config.retry_failed = true;

    let started = Instant::now();
    let report = Eureka::new(config).route(&mut diagram);
    assert!(
        started.elapsed() < LATENCY_BOUND,
        "pre-cancelled salvage run took {:?}",
        started.elapsed()
    );
    assert!(report.routed.is_empty(), "nothing routes after cancellation");
    assert_eq!(report.failed.len(), diagram.network().net_count());
}

#[test]
fn long_chain_cancellation_still_reports_every_net() {
    // A larger, well-formed workload (the paper's string placement
    // shape): cancel mid-run and check the invariant that failed nets
    // carry no wires while routed nets keep theirs.
    let net = string_chain(40);
    let placement = Pablo::new(PlaceConfig::strings()).place(&net);
    let mut diagram = Diagram::new(net, placement);
    let token = CancelToken::new();
    let config = RouteConfig::default().with_cancel(token.clone());

    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        token.cancel();
    });
    let report = Eureka::new(config).route(&mut diagram);
    canceller.join().expect("canceller thread");

    assert_eq!(
        report.routed.len() + report.failed.len(),
        diagram.network().net_count()
    );
    for n in &report.failed {
        assert!(diagram.route(*n).is_none(), "failed net has no wires");
    }
    for n in &report.routed {
        assert!(diagram.route(*n).is_some());
    }
}
