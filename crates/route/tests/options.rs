//! Behavioural tests for the Appendix F option set: the `-s` swapped
//! tie-break and the fixed plane borders.

use netart_diagram::Placement;
use netart_geom::{Dir, Point, Rect, Rotation, Segment};
use netart_netlist::{Library, NetId, NetworkBuilder, Template, TermType};
use netart_route::{line_expansion, Eureka, ObstacleKind, ObstacleMap, RouteConfig};

/// A plane with a central wall pierced by two corridors. The lower
/// corridor is the shorter detour but a foreign vertical net runs
/// across it; the upper corridor is longer and clean. Both detours use
/// the same (minimum) number of bends and are discovered in the same
/// wavefront generation, so the crossings-versus-length tie-break picks
/// between them.
fn tradeoff_plane() -> ObstacleMap {
    let mut map = ObstacleMap::new();
    map.add_rect(&Rect::new(Point::new(0, 0), 40, 30), ObstacleKind::Module);
    // Wall at x=20: lower corridor at y in [1, 3], upper at y in [28, 29].
    map.add(Segment::vertical(20, 4, 27), ObstacleKind::Module);
    map.add_point(Point::new(20, 0), ObstacleKind::Module);
    map.add_point(Point::new(20, 30), ObstacleKind::Module);
    // Foreign net across the lower corridor.
    map.add(
        Segment::vertical(21, 0, 4),
        ObstacleKind::Net(NetId::from_index(9)),
    );
    map
}

fn crosses_foreign(path: &netart_diagram::NetPath) -> bool {
    let foreign = netart_diagram::NetPath::from_segments(vec![Segment::vertical(21, 0, 4)]);
    !path.crossings_with(&foreign).is_empty()
}

#[test]
fn default_tiebreak_prefers_fewer_crossings() {
    let map = tradeoff_plane();
    let path = line_expansion::route_two_points_with(
        &map,
        (Point::new(2, 15), &[Dir::Right]),
        (Point::new(38, 15), &[Dir::Left]),
        NetId::from_index(0),
        false,
        32,
    )
    .expect("routable");
    assert!(path.connects(&[Point::new(2, 15), Point::new(38, 15)]));
    assert!(
        !crosses_foreign(&path),
        "crossing-free detour expected: {:?}",
        path.segments()
    );
}

#[test]
fn swapped_tiebreak_prefers_shorter_wire() {
    let map = tradeoff_plane();
    let default_path = line_expansion::route_two_points_with(
        &map,
        (Point::new(2, 15), &[Dir::Right]),
        (Point::new(38, 15), &[Dir::Left]),
        NetId::from_index(0),
        false,
        32,
    )
    .expect("routable");
    let swapped_path = line_expansion::route_two_points_with(
        &map,
        (Point::new(2, 15), &[Dir::Right]),
        (Point::new(38, 15), &[Dir::Left]),
        NetId::from_index(0),
        true,
        32,
    )
    .expect("routable");
    assert_eq!(
        default_path.bends(),
        swapped_path.bends(),
        "both use the minimum bends"
    );
    assert!(
        swapped_path.length() < default_path.length(),
        "swapped: {} !< default: {}",
        swapped_path.length(),
        default_path.length()
    );
    assert!(crosses_foreign(&swapped_path), "{:?}", swapped_path.segments());
}

/// Two stacked modules whose connecting terminals sit on their top
/// edges: the natural route arcs over the top.
fn top_heavy_diagram() -> netart_diagram::Diagram {
    let mut lib = Library::new();
    let t = lib
        .add_template(
            Template::new("m", (4, 4))
                .unwrap()
                .with_terminal("a", (1, 4), TermType::In)
                .unwrap()
                .with_terminal("y", (3, 4), TermType::Out)
                .unwrap(),
        )
        .unwrap();
    let mut b = NetworkBuilder::new(lib);
    let u0 = b.add_instance("u0", t).unwrap();
    let u1 = b.add_instance("u1", t).unwrap();
    b.connect_pin("n", u0, "y").unwrap();
    b.connect_pin("n", u1, "a").unwrap();
    let network = b.finish().unwrap();
    let mut placement = Placement::new(&network);
    placement.place_module(u0, Point::new(0, 0), Rotation::R0);
    placement.place_module(u1, Point::new(10, 0), Rotation::R0);
    netart_diagram::Diagram::new(network, placement)
}

#[test]
fn fixed_upper_border_limits_the_route() {
    // Unconstrained: the route may climb up to 4 tracks above the
    // modules. With `-u` the ceiling is one track.
    let mut free = top_heavy_diagram();
    let report = Eureka::new(RouteConfig::default()).route(&mut free);
    assert!(report.failed.is_empty());

    let mut fixed = top_heavy_diagram();
    let report = Eureka::new(RouteConfig::default().with_fixed_up()).route(&mut fixed);
    assert!(report.failed.is_empty(), "still routable under the low ceiling");
    let bb = fixed
        .placement()
        .bounding_box(fixed.network())
        .expect("placed");
    let ceiling = bb.upper_right().y + 1;
    for (_, path) in fixed.routes() {
        for seg in path.segments() {
            let top = match seg.axis() {
                netart_geom::Axis::Horizontal => seg.track(),
                netart_geom::Axis::Vertical => seg.span().hi(),
            };
            assert!(top <= ceiling, "wire above the fixed border: {seg:?}");
        }
    }
    assert!(fixed.check().is_ok(), "{}", fixed.check());
}

#[test]
fn all_borders_fixed_still_routes_simple_cases() {
    let mut d = top_heavy_diagram();
    let cfg = RouteConfig::default()
        .with_fixed_up()
        .with_fixed_down()
        .with_fixed_left()
        .with_fixed_right();
    let report = Eureka::new(cfg).route(&mut d);
    assert!(report.failed.is_empty(), "{report:?}");
    assert!(d.check().is_ok(), "{}", d.check());
}
