//! Property-based tests for the routing phase: on arbitrary placed
//! random networks, EUREKA's output always satisfies the §5.3
//! postconditions (verified by the diagram checker), under any option
//! combination.

use proptest::prelude::*;

use netart_diagram::Diagram;
use netart_place::{Pablo, PlaceConfig};
use netart_route::{Eureka, NetOrder, RouteConfig};
use netart_workloads::{random_network, RandomSpec};

fn spec_strategy() -> impl Strategy<Value = RandomSpec> {
    (2usize..12, 1usize..18, 2usize..4, 0usize..3, 0u64..500).prop_map(
        |(modules, nets, fanout, terms, seed)| RandomSpec {
            modules,
            nets,
            max_fanout: fanout,
            system_terminals: terms,
            seed,
        },
    )
}

fn route_config_strategy() -> impl Strategy<Value = RouteConfig> {
    (
        2i32..8,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::sample::select(vec![
            NetOrder::Definition,
            NetOrder::MostPinsFirst,
            NetOrder::FewestPinsFirst,
        ]),
    )
        .prop_map(|(margin, claims, retry, swap, order)| {
            let mut c = RouteConfig::new().with_margin(margin).with_order(order);
            c.claimpoints = claims;
            c.retry_failed = retry;
            c.swap_tiebreak = swap;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever EUREKA routes is structurally sound: connected trees
    /// over exactly the right pins, no module entry, only perpendicular
    /// crossings between nets. Failed nets stay empty.
    #[test]
    fn routed_diagrams_pass_the_checker(
        spec in spec_strategy(),
        route in route_config_strategy(),
    ) {
        let net = random_network(&spec);
        let placement = Pablo::new(PlaceConfig::strings().with_module_spacing(1)).place(&net);
        let mut diagram = Diagram::new(net, placement);
        let report = Eureka::new(route).route(&mut diagram);
        let check = diagram.check();
        prop_assert!(check.is_ok(), "{check}");
        for n in &report.failed {
            prop_assert!(diagram.route(*n).is_none(), "failed net has no wires");
        }
        for n in &report.routed {
            prop_assert!(diagram.route(*n).is_some());
        }
        prop_assert_eq!(
            report.routed.len() + report.failed.len(),
            diagram.network().net_count()
        );
    }

    /// Routing is deterministic.
    #[test]
    fn routing_is_deterministic(spec in spec_strategy()) {
        let net = random_network(&spec);
        let placement = Pablo::new(PlaceConfig::strings()).place(&net);
        let mut d1 = Diagram::new(net.clone(), placement.clone());
        let mut d2 = Diagram::new(net.clone(), placement);
        Eureka::new(RouteConfig::default()).route(&mut d1);
        Eureka::new(RouteConfig::default()).route(&mut d2);
        for n in net.nets() {
            let a = d1.route(n).map(|p| p.segments().to_vec());
            let b = d2.route(n).map(|p| p.segments().to_vec());
            prop_assert_eq!(a, b);
        }
    }

    /// Prerouted nets survive a second routing pass untouched, and the
    /// rest still routes around them.
    #[test]
    fn rerouting_respects_existing_wires(spec in spec_strategy()) {
        let net = random_network(&spec);
        let placement = Pablo::new(PlaceConfig::strings().with_module_spacing(1)).place(&net);
        let mut diagram = Diagram::new(net.clone(), placement);
        Eureka::new(RouteConfig::default()).route(&mut diagram);
        let before: Vec<_> = net
            .nets()
            .map(|n| diagram.route(n).map(|p| p.segments().to_vec()))
            .collect();
        // Drop the last routed net and reroute: everything else stays.
        if let Some(last) = net.nets().filter(|&n| diagram.route(n).is_some()).last() {
            diagram.clear_route(last);
            Eureka::new(RouteConfig::default()).route(&mut diagram);
            prop_assert!(diagram.check().is_ok());
            for n in net.nets() {
                if n != last {
                    let now = diagram.route(n).map(|p| p.segments().to_vec());
                    prop_assert_eq!(now, before[n.index()].clone(), "net {} changed", n);
                }
            }
        }
    }
}
