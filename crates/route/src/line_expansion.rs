//! Direct two-point access to the line-expansion engine.
//!
//! [`crate::Eureka`] drives the engine net by net over a whole diagram;
//! this module exposes the same search for a single connection over a
//! bare [`ObstacleMap`], signature-compatible with the [`crate::lee`]
//! and [`crate::hightower`] baselines — which is exactly what the
//! paper's §5.4 comparison and the benchmark suite need.

use netart_geom::{Dir, Point};
use netart_netlist::NetId;

use netart_diagram::NetPath;

use crate::budget::BudgetMeter;
use crate::expand::{Front, Search, SearchResult};
use crate::ObstacleMap;

/// Routes a two-point connection with line expansion.
///
/// `from`/`to` pair each terminal point with its allowed exit
/// directions (a module terminal exits through its side; a free point
/// may use all four). `net` names the connection: obstacles of kind
/// [`crate::ObstacleKind::Net`] with this id act as additional targets,
/// its claims are ignored by the caller's bookkeeping. Returns the
/// minimum-bend path (crossovers, then length as tie-breaks), or
/// `None` when no path exists.
///
/// # Examples
///
/// ```
/// use netart_geom::{Dir, Point, Rect};
/// use netart_netlist::NetId;
/// use netart_route::{line_expansion, ObstacleKind, ObstacleMap};
///
/// let mut map = ObstacleMap::new();
/// map.add_rect(&Rect::new(Point::new(0, 0), 20, 10), ObstacleKind::Module);
/// let path = line_expansion::route_two_points(
///     &map,
///     (Point::new(2, 5), &[Dir::Right]),
///     (Point::new(15, 5), &[Dir::Left]),
///     NetId::from_index(0),
/// ).expect("straight corridor");
/// assert_eq!(path.bends(), 0);
/// ```
pub fn route_two_points(
    map: &ObstacleMap,
    from: (Point, &[Dir]),
    to: (Point, &[Dir]),
    net: NetId,
) -> Option<NetPath> {
    route_two_points_with(map, from, to, net, false, 64)
}

/// Like [`route_two_points`] with explicit tie-break order (`-s`) and
/// bend budget.
pub fn route_two_points_with(
    map: &ObstacleMap,
    from: (Point, &[Dir]),
    to: (Point, &[Dir]),
    net: NetId,
    swap_tiebreak: bool,
    max_bends: u32,
) -> Option<NetPath> {
    let mut search = Search::new(map, net, swap_tiebreak, max_bends);
    for &d in from.1 {
        search.seed(Front::A, from.0, d);
    }
    for &d in to.1 {
        search.seed(Front::B, to.0, d);
    }
    match search.run(&mut BudgetMeter::unlimited()) {
        SearchResult::Connected(conn) => Some(NetPath::from_segments(conn.segments)),
        SearchResult::Unreachable | SearchResult::OverBudget => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObstacleKind;
    use netart_geom::Rect;

    #[test]
    fn free_point_uses_all_directions() {
        let mut map = ObstacleMap::new();
        map.add_rect(&Rect::new(Point::new(0, 0), 20, 20), ObstacleKind::Module);
        let path = route_two_points(
            &map,
            (Point::new(5, 5), &Dir::ALL),
            (Point::new(15, 12), &Dir::ALL),
            NetId::from_index(0),
        )
        .expect("open plane");
        assert!(path.connects(&[Point::new(5, 5), Point::new(15, 12)]));
        assert_eq!(path.bends(), 1, "{:?}", path.segments());
    }

    #[test]
    fn restricted_exit_costs_bends() {
        let mut map = ObstacleMap::new();
        map.add_rect(&Rect::new(Point::new(0, 0), 20, 20), ObstacleKind::Module);
        // Both terminals forced to exit upward although they face each
        // other horizontally.
        let path = route_two_points(
            &map,
            (Point::new(5, 5), &[Dir::Up]),
            (Point::new(15, 5), &[Dir::Up]),
            NetId::from_index(0),
        )
        .expect("up-and-over");
        assert!(path.connects(&[Point::new(5, 5), Point::new(15, 5)]));
        assert_eq!(path.bends(), 2, "{:?}", path.segments());
    }

    #[test]
    fn zero_bend_budget_only_finds_straight_lines() {
        let mut map = ObstacleMap::new();
        map.add_rect(&Rect::new(Point::new(0, 0), 20, 20), ObstacleKind::Module);
        let straight = route_two_points_with(
            &map,
            (Point::new(2, 5), &[Dir::Right]),
            (Point::new(15, 5), &[Dir::Left]),
            NetId::from_index(0),
            false,
            0,
        );
        assert!(straight.is_some());
        let bent = route_two_points_with(
            &map,
            (Point::new(2, 5), &[Dir::Right]),
            (Point::new(15, 9), &[Dir::Left]),
            NetId::from_index(0),
            false,
            0,
        );
        assert!(bent.is_none(), "an offset pair needs bends");
    }
}
