//! The line-expansion search engine (§5.5–§5.6).
//!
//! One [`Search`] routes one connection: either a two-terminal
//! initiation with two wavefronts (`INIT_NET`) or a single front
//! expanding towards the already-routed part of the net (`EXPAND_NET`).
//!
//! An *active segment* is a set of reached collinear points with an
//! expansion direction. Expanding it sweeps the whole span
//! perpendicular, track by track, splitting at obstacles:
//!
//! * module edges, the plane border and claimpoints block,
//! * other nets block at their endpoints (bends) and are crossed in
//!   their interior (counted),
//! * same-front actives block and are trimmed (every zone is searched
//!   once),
//! * opposite-front actives and segments of the net under construction
//!   are solutions.
//!
//! The borders of the newly reached zone become the next generation of
//! active segments (one more bend). Fronts advance a generation at a
//! time, alternating, so the first generation that produces solution
//! candidates contains the minimum-bend paths; among those candidates
//! the best (fewest crossovers, then shortest — or swapped under `-s`)
//! is reconstructed by walking originator links.

use std::collections::BTreeMap;

use netart_geom::{Axis, Dir, Interval, Point, Segment};
use netart_netlist::NetId;

use crate::budget::BudgetMeter;
use crate::{ObstacleKind, ObstacleMap};

/// Which wavefront an active segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Front {
    /// The front grown from the first terminal (the only front in
    /// `EXPAND_NET` mode).
    A,
    /// The front grown from the second terminal.
    B,
}

impl Front {
    fn idx(self) -> usize {
        match self {
            Front::A => 0,
            Front::B => 1,
        }
    }

    fn other(self) -> Front {
        match self {
            Front::A => Front::B,
            Front::B => Front::A,
        }
    }
}

/// An active segment (the paper's ten-tuple, with the originator held
/// as an arena link).
#[derive(Debug, Clone)]
struct Active {
    parent: Option<usize>,
    front: Front,
    dir: Dir,
    /// Fixed coordinate: y for horizontal segments (dir up/down), x for
    /// vertical ones (dir left/right).
    track: i32,
    /// Range along the segment.
    span: Interval,
    /// Wave number: bends used to reach this segment.
    bends: u32,
    /// Nets crossed on the way here.
    crossings: u32,
    alive: bool,
    expanded: bool,
}

impl Active {
    fn axis(&self) -> Axis {
        self.dir.segment_axis()
    }

    /// The plane point at span-coordinate `s`.
    fn point_at(&self, s: i32) -> Point {
        match self.axis() {
            Axis::Horizontal => Point::new(s, self.track),
            Axis::Vertical => Point::new(self.track, s),
        }
    }
}

/// How the far side of a solution candidate connects.
#[derive(Debug, Clone, Copy)]
enum FarSide {
    /// Met an active of the opposite front: trace it back too.
    Active { id: usize, entry: i32 },
    /// Met a segment of the net under construction: just join it.
    Net,
}

#[derive(Debug, Clone)]
struct Candidate {
    /// Geometric bends of the reconstructed wire (computed at creation).
    bends: u32,
    crossings: u32,
    length: u32,
    /// `false` when the joint avoids creating a branching node.
    branches: bool,
    near: usize,
    near_entry: i32,
    bridge: Option<Segment>,
    far: FarSide,
}

/// How one connection search ended.
#[derive(Debug, Clone)]
pub(crate) enum SearchResult {
    /// The fronts met; here is the wire.
    Connected(Connection),
    /// The reachable zone is exhausted and the fronts never met.
    Unreachable,
    /// The budget ran out before the search could decide (the meter
    /// records which limit tripped). When the meter trips while
    /// candidates exist, the best one found so far is returned as
    /// [`SearchResult::Connected`] instead — a possibly non-minimal
    /// wire beats no wire.
    OverBudget,
}

impl SearchResult {
    /// The connection, if any (used by engine-level tests).
    #[cfg(test)]
    pub(crate) fn connected(self) -> Option<Connection> {
        match self {
            SearchResult::Connected(c) => Some(c),
            _ => None,
        }
    }
}

/// The routed geometry of one successful connection.
#[derive(Debug, Clone)]
pub(crate) struct Connection {
    /// The wire segments, collinear-merged, zero-length pieces dropped.
    pub segments: Vec<Segment>,
    /// Crossings with other nets along the chosen path (exposed for
    /// the engine's own tests; diagrams recount crossings from
    /// geometry).
    #[cfg_attr(not(test), allow(dead_code))]
    pub crossings: u32,
}

/// One connection search over a fixed obstacle configuration.
pub(crate) struct Search<'a> {
    map: &'a ObstacleMap,
    net: NetId,
    swap_tiebreak: bool,
    max_bends: u32,
    arena: Vec<Active>,
    /// `index[front][axis]`: occupied tracks → active ids, for sweeps
    /// and meet detection.
    index: [[BTreeMap<i32, Vec<usize>>; 2]; 2],
    /// `covered[front][dir]`: track → union of spans ever activated
    /// *with that expansion direction*. A front never re-activates
    /// covered ground — the paper's "every zone is searched just once"
    /// made airtight, which also bounds the total work of an exhaustive
    /// (unroutable) search by four times the plane area. Keyed per
    /// direction because the same segment expanding up and expanding
    /// down explores different half-planes.
    covered: [[BTreeMap<i32, Vec<Interval>>; 4]; 2],
    pending: [Vec<usize>; 2],
    candidates: Vec<Candidate>,
    /// Bounding box of every activated piece, as
    /// `(min_x, min_y, max_x, max_y)` — the spatial extent the search
    /// touched, fed to the `netart profile` heat map. Deterministic
    /// for a given obstacle configuration.
    explored: Option<(i32, i32, i32, i32)>,
}

/// Removes the union of `covered` from `span`, returning the leftover
/// pieces in ascending order.
fn subtract_all(span: Interval, covered: &[Interval]) -> Vec<Interval> {
    let mut pieces = vec![span];
    for &c in covered {
        pieces = pieces
            .into_iter()
            .flat_map(|p| {
                let (l, r) = p.subtract(c);
                l.into_iter().chain(r)
            })
            .collect();
    }
    pieces
}

fn axis_idx(axis: Axis) -> usize {
    match axis {
        Axis::Horizontal => 0,
        Axis::Vertical => 1,
    }
}

fn dir_idx(dir: Dir) -> usize {
    match dir {
        Dir::Left => 0,
        Dir::Right => 1,
        Dir::Up => 2,
        Dir::Down => 3,
    }
}

impl<'a> Search<'a> {
    pub(crate) fn new(map: &'a ObstacleMap, net: NetId, swap_tiebreak: bool, max_bends: u32) -> Self {
        Search {
            map,
            net,
            swap_tiebreak,
            max_bends,
            arena: Vec::new(),
            index: Default::default(),
            covered: Default::default(),
            pending: [Vec::new(), Vec::new()],
            candidates: Vec::new(),
            explored: None,
        }
    }

    /// The bounding box of everything this search activated, as
    /// `(min_x, min_y, max_x, max_y)`; `None` when nothing was.
    pub(crate) fn explored_rect(&self) -> Option<(i32, i32, i32, i32)> {
        self.explored
    }

    /// Seeds a front with the degenerate active of a terminal point
    /// expanding towards `dir` (`INIT_ACTIVES`). System terminals call
    /// this once per direction.
    pub(crate) fn seed(&mut self, front: Front, p: Point, dir: Dir) {
        let (track, coord) = match dir.segment_axis() {
            Axis::Horizontal => (p.y, p.x),
            Axis::Vertical => (p.x, p.y),
        };
        self.push_active(Active {
            parent: None,
            front,
            dir,
            track,
            span: Interval::point(coord),
            bends: 0,
            crossings: 0,
            alive: true,
            expanded: false,
        });
    }

    fn push_active(&mut self, a: Active) {
        // Only the uncovered parts of the span become active; the rest
        // was reached before with no more bends than now.
        let cov = self.covered[a.front.idx()][dir_idx(a.dir)]
            .entry(a.track)
            .or_default();
        let pieces = subtract_all(a.span, cov);
        cov.extend(pieces.iter().copied());
        for span in pieces {
            let id = self.arena.len();
            let mut piece = a.clone();
            piece.span = span;
            let (x0, y0, x1, y1) = match piece.axis() {
                Axis::Horizontal => (span.lo(), piece.track, span.hi(), piece.track),
                Axis::Vertical => (piece.track, span.lo(), piece.track, span.hi()),
            };
            self.explored = Some(match self.explored {
                None => (x0, y0, x1, y1),
                Some((ex0, ey0, ex1, ey1)) => {
                    (ex0.min(x0), ey0.min(y0), ex1.max(x1), ey1.max(y1))
                }
            });
            self.index[piece.front.idx()][axis_idx(piece.axis())]
                .entry(piece.track)
                .or_default()
                .push(id);
            self.pending[piece.front.idx()].push(id);
            self.arena.push(piece);
            self.check_meets(id);
        }
    }

    /// Runs the alternating wavefront search. `two_front` distinguishes
    /// `INIT_NET` (meet the other front) from `EXPAND_NET` (meet the
    /// net's own routed segments). Every expanded active charges one
    /// node on `meter`; a tripped meter ends the search with the best
    /// candidate found so far, or [`SearchResult::OverBudget`] when
    /// there is none.
    pub(crate) fn run(&mut self, meter: &mut BudgetMeter) -> SearchResult {
        let mut gen = 0u32;
        loop {
            // A candidate is final once no unexpanded active (all of
            // bend generation >= gen) can start a cheaper path.
            // A candidate becomes final once the generation counter
            // reaches its geometric bend count: zero-length trace hops
            // can merge segments, so later generations occasionally
            // hold a path with fewer geometric bends, which is why the
            // paper promises minimal bends only "in most cases" (§5.8).
            let best = self.candidates.iter().map(|c| c.bends).min();
            if let Some(best) = best {
                if best <= gen {
                    return SearchResult::Connected(self.reconstruct());
                }
            }
            if gen > self.max_bends {
                return self.best_or_unreachable();
            }
            let mut any = false;
            for front in [Front::A, Front::B] {
                loop {
                    let batch: Vec<usize> = {
                        let pending = &mut self.pending[front.idx()];
                        let mut batch = Vec::new();
                        let mut keep = Vec::new();
                        for id in pending.drain(..) {
                            let a = &self.arena[id];
                            if a.alive && !a.expanded && a.bends == gen {
                                batch.push(id);
                            } else if a.alive && !a.expanded {
                                keep.push(id);
                            }
                        }
                        *pending = keep;
                        batch
                    };
                    if batch.is_empty() {
                        break;
                    }
                    any = true;
                    for id in batch {
                        if self.arena[id].alive && !self.arena[id].expanded {
                            if meter.charge().is_some() {
                                return match self.best_or_unreachable() {
                                    SearchResult::Connected(c) => SearchResult::Connected(c),
                                    _ => SearchResult::OverBudget,
                                };
                            }
                            self.expand(id);
                        }
                    }
                }
            }
            if !any {
                // Both fronts exhausted: the best meeting found, if any.
                return self.best_or_unreachable();
            }
            gen += 1;
        }
    }

    /// The best candidate found so far, or unreachability.
    fn best_or_unreachable(&mut self) -> SearchResult {
        if self.candidates.is_empty() {
            SearchResult::Unreachable
        } else {
            SearchResult::Connected(self.reconstruct())
        }
    }

    /// The next track beyond `from` in `dir` holding static obstacles
    /// or active segments of either front.
    fn next_track(&self, dir: Dir, from: i32) -> Option<i32> {
        let axis = axis_idx(dir.segment_axis());
        let mut best = self.map.next_track(dir, from);
        for f in 0..2 {
            let lanes = &self.index[f][axis];
            let cand = match dir {
                Dir::Up | Dir::Right => lanes.range(from + 1..).next().map(|(&t, _)| t),
                Dir::Down | Dir::Left => lanes.range(..from).next_back().map(|(&t, _)| t),
            };
            best = match (best, cand) {
                (None, c) => c,
                (b, None) => b,
                (Some(b), Some(c)) => Some(match dir {
                    Dir::Up | Dir::Right => b.min(c),
                    Dir::Down | Dir::Left => b.max(c),
                }),
            };
        }
        best
    }

    /// Expands one active segment (`EXPAND_SEGMENT`).
    fn expand(&mut self, id: usize) {
        self.arena[id].expanded = true;
        let a = self.arena[id].clone();
        let dir = a.dir;
        let step = dir.sign();

        // The swept pieces: (columns, crossings accumulated).
        let mut pieces: Vec<(Interval, u32)> = vec![(a.span, a.crossings)];
        // Where each group of columns stopped: (columns, last reached track).
        let mut ends: Vec<(Interval, i32)> = Vec::new();
        // Nets crossed during this sweep: (track, columns).
        let mut crossed: Vec<(i32, Interval)> = Vec::new();

        let mut track = a.track;
        while !pieces.is_empty() {
            let Some(next) = self.next_track(dir, track) else {
                // No plane border? Terminate everything here (the
                // router always installs a border, so this is a guard).
                ends.extend(pieces.drain(..).map(|(iv, _)| (iv, track)));
                break;
            };
            track = next;
            pieces = self.sweep_track(&a, id, track, step, pieces, &mut ends, &mut crossed);
        }

        self.make_borders(&a, id, &ends, &crossed);
    }

    /// Processes all obstacles on one track against the live pieces;
    /// returns the pieces that continue past it.
    #[allow(clippy::too_many_arguments)]
    fn sweep_track(
        &mut self,
        a: &Active,
        a_id: usize,
        track: i32,
        step: i32,
        pieces: Vec<(Interval, u32)>,
        ends: &mut Vec<(Interval, i32)>,
        crossed: &mut Vec<(i32, Interval)>,
    ) -> Vec<(Interval, u32)> {
        #[derive(Clone, Copy)]
        enum Action {
            Block,
            BlockOwn(usize),
            Target,
            Meet(usize),
            Cross,
        }

        // Gather entries at this track, blocking kinds first so that a
        // module edge shadowing a net wins.
        let mut entries: Vec<(Interval, Action)> = Vec::new();
        for o in self.map.at(a.axis(), track) {
            let action = match o.kind {
                ObstacleKind::Module | ObstacleKind::Claim(_) => Action::Block,
                ObstacleKind::Net(n) if n == self.net => Action::Target,
                ObstacleKind::Net(_) => Action::Cross,
            };
            entries.push((o.span, action));
        }
        for f in [a.front, a.front.other()] {
            if let Some(ids) = self.index[f.idx()][axis_idx(a.axis())].get(&track) {
                for &oid in ids {
                    if oid == a_id || !self.arena[oid].alive {
                        continue;
                    }
                    let act = &self.arena[oid];
                    let action = if f == a.front {
                        Action::BlockOwn(oid)
                    } else {
                        Action::Meet(oid)
                    };
                    entries.push((act.span, action));
                }
            }
        }
        let rank = |e: &Action| match e {
            Action::Block => 0,
            Action::BlockOwn(_) => 1,
            Action::Target => 2,
            Action::Meet(_) => 3,
            Action::Cross => 4,
        };
        entries.sort_by_key(|(_, e)| rank(e));

        let stop = track - step;
        let mut work = pieces;
        for (span, action) in entries {
            let mut next_work: Vec<(Interval, u32)> = Vec::new();
            for (iv, cr) in work {
                let Some(ov) = iv.intersect(span) else {
                    next_work.push((iv, cr));
                    continue;
                };
                let (left, right) = iv.subtract(span);
                next_work.extend(left.map(|l| (l, cr)));
                next_work.extend(right.map(|r| (r, cr)));
                match action {
                    Action::Block => ends.push((ov, stop)),
                    Action::BlockOwn(oid) => {
                        ends.push((ov, stop));
                        self.trim(oid, ov);
                    }
                    Action::Target => {
                        ends.push((ov, stop));
                        self.candidate_net(a, a_id, ov, span, track, cr);
                    }
                    Action::Meet(oid) => {
                        ends.push((ov, stop));
                        self.candidate_meet(a, a_id, oid, ov, track, cr);
                    }
                    Action::Cross => {
                        // Net endpoints (bends) block; the interior is
                        // crossed and counted.
                        for e in [span.lo(), span.hi()] {
                            if ov.contains(e) {
                                ends.push((Interval::point(e), stop));
                            }
                        }
                        let lo = if ov.contains(span.lo()) { span.lo() + 1 } else { ov.lo() };
                        let hi = if ov.contains(span.hi()) { span.hi() - 1 } else { ov.hi() };
                        if lo <= hi {
                            let interior = Interval::new(lo, hi);
                            crossed.push((track, interior));
                            next_work.push((interior, cr + 1));
                        }
                    }
                }
            }
            work = next_work;
        }
        work
    }

    /// Cuts `ov` out of a same-front active reached by a sweep
    /// (`OWN_OBSTACLE`): its zone is already covered.
    fn trim(&mut self, id: usize, ov: Interval) {
        let (left, right) = self.arena[id].span.subtract(ov);
        match (left, right) {
            (Some(l), Some(r)) => {
                self.arena[id].span = l;
                let mut sibling = self.arena[id].clone();
                sibling.span = r;
                // Re-register the sibling; `push_active` puts it back in
                // the pending list when still unexpanded.
                let sid = self.arena.len();
                self.index[sibling.front.idx()][axis_idx(sibling.axis())]
                    .entry(sibling.track)
                    .or_default()
                    .push(sid);
                if !sibling.expanded {
                    self.pending[sibling.front.idx()].push(sid);
                }
                self.arena.push(sibling);
            }
            (Some(l), None) => self.arena[id].span = l,
            (None, Some(r)) => self.arena[id].span = r,
            (None, None) => self.arena[id].alive = false,
        }
    }

    /// Completes a candidate by measuring the geometric bends of its
    /// wire, then records it.
    fn push_candidate(&mut self, mut c: Candidate) {
        let geometry = self.build(&c);
        c.bends = netart_diagram::NetPath::from_segments(geometry).bends();
        self.candidates.push(c);
    }

    /// Length of the path from the point at span-coordinate `s` on
    /// active `id` back to its root (`PATH_LENGTH`).
    fn trace_len(&self, id: usize, s: i32) -> u32 {
        let mut len = 0u32;
        let mut cur = id;
        let mut coord = s;
        while let Some(parent) = self.arena[cur].parent {
            let pt = self.arena[parent].track;
            len += coord.abs_diff(pt);
            coord = self.arena[cur].track;
            cur = parent;
        }
        len
    }

    /// First-hop kink: the span coordinate towards which the trace from
    /// this active gets shorter (the parent's track, or the root point).
    fn pull(&self, id: usize) -> i32 {
        match self.arena[id].parent {
            Some(p) => self.arena[p].track,
            None => self.arena[id].span.lo(), // roots are points
        }
    }

    /// Candidate against a segment of the net under construction.
    fn candidate_net(
        &mut self,
        a: &Active,
        near: usize,
        ov: Interval,
        target: Interval,
        track: i32,
        cr: u32,
    ) {
        let mut entries = vec![ov.clamp(self.pull(near)), ov.lo(), ov.hi()];
        entries.dedup();
        for s in entries {
            // Joining at an endpoint of the existing segment avoids a
            // new branching node (§5.6.3 UPDATE_SOLUTION).
            let branches = s != target.lo() && s != target.hi();
            let bridge = self.bridge(a, s, track);
            self.push_candidate(Candidate {
                bends: 0,
                crossings: cr,
                length: a.track.abs_diff(track) + self.trace_len(near, s),
                branches,
                near,
                near_entry: s,
                bridge,
                far: FarSide::Net,
            });
        }
    }

    /// Candidate against an opposite-front active.
    fn candidate_meet(
        &mut self,
        a: &Active,
        near: usize,
        oid: usize,
        ov: Interval,
        track: i32,
        cr: u32,
    ) {
        let far_cross = self.arena[oid].crossings;
        let mut entries = vec![
            ov.clamp(self.pull(near)),
            ov.clamp(self.pull(oid)),
            ov.lo(),
            ov.hi(),
        ];
        entries.sort_unstable();
        entries.dedup();
        for s in entries {
            let bridge = self.bridge(a, s, track);
            self.push_candidate(Candidate {
                bends: 0,
                crossings: cr + far_cross,
                length: a.track.abs_diff(track)
                    + self.trace_len(near, s)
                    + self.trace_len(oid, s),
                branches: false,
                near,
                near_entry: s,
                bridge,
                far: FarSide::Active { id: oid, entry: s },
            });
        }
    }

    /// The bridging segment from active `a` to the meeting track, at
    /// span coordinate `s`.
    fn bridge(&self, a: &Active, s: i32, track: i32) -> Option<Segment> {
        let from = a.point_at(s);
        let to = match a.axis() {
            Axis::Horizontal => Point::new(s, track),
            Axis::Vertical => Point::new(track, s),
        };
        Segment::between(from, to)
    }

    /// Creates the next generation from the sweep's end events
    /// (`NEW_ACTIVES`): the perpendicular borders of the reached zone,
    /// with crossing points cut out.
    fn make_borders(&mut self, a: &Active, id: usize, ends: &[(Interval, i32)], crossed: &[(i32, Interval)]) {
        if a.bends + 1 > self.max_bends {
            return;
        }
        let step = a.dir.sign();
        // reach(column) relative: convert "last reached track" into a
        // signed progression so one code path serves all directions.
        let prog = |t: i32| (t - a.track) * step; // 0 = no progress
        let mut events: Vec<(Interval, i32)> = ends
            .iter()
            .map(|&(iv, reach)| (iv, prog(reach)))
            .collect();
        events.push((Interval::point(a.span.lo() - 1), 0));
        events.push((Interval::point(a.span.hi() + 1), 0));
        events.sort_by_key(|&(iv, _)| iv.lo());

        for w in events.windows(2) {
            let (iv1, r1) = w[0];
            let (iv2, r2) = w[1];
            if r1 == r2 {
                continue;
            }
            // Border at the edge column of the taller side, spanning the
            // rows the shorter side did not reach, expanding towards the
            // shorter side.
            let (col, lo_p, hi_p, out_dir) = if r1 < r2 {
                (iv2.lo(), r1 + 1, r2, border_dir(a.dir, true))
            } else {
                (iv1.hi(), r2 + 1, r1, border_dir(a.dir, false))
            };
            if lo_p > hi_p {
                continue;
            }
            // Back to absolute tracks along the sweep direction.
            let t0 = a.track + lo_p * step;
            let t1 = a.track + hi_p * step;
            let span = Interval::new(t0.min(t1), t0.max(t1));
            // Cut out the rows where this sweep crossed a net at `col`.
            let mut sub_spans = vec![span];
            for &(ct, civ) in crossed {
                if !civ.contains(col) {
                    continue;
                }
                sub_spans = sub_spans
                    .into_iter()
                    .flat_map(|sp| {
                        let (l, r) = sp.subtract(Interval::point(ct));
                        l.into_iter().chain(r)
                    })
                    .collect();
            }
            for sp in sub_spans {
                // Crossings below the border piece: nets crossed by the
                // escape line from the originator up to the piece.
                let cr = a.crossings
                    + crossed
                        .iter()
                        .filter(|&&(ct, civ)| civ.contains(col) && prog(ct) < prog_of(sp, a, step))
                        .count() as u32;
                self.push_active(Active {
                    parent: Some(id),
                    front: a.front,
                    dir: out_dir,
                    track: col,
                    span: sp,
                    bends: a.bends + 1,
                    crossings: cr,
                    alive: true,
                    expanded: false,
                });
            }
        }
    }

    /// Completeness backstop: a freshly created active that geometrically
    /// touches the opposite front (collinear or crossing) is a meeting
    /// the track sweeps may only discover a generation later.
    fn check_meets(&mut self, id: usize) {
        let a = self.arena[id].clone();
        if a.parent.is_none() {
            return; // roots are seeded before the other front exists
        }
        let other = a.front.other();
        // Collinear: same axis, same track, overlapping span.
        if let Some(ids) = self.index[other.idx()][axis_idx(a.axis())].get(&a.track) {
            for oid in ids.clone() {
                let b = &self.arena[oid];
                if !b.alive {
                    continue;
                }
                if let Some(ov) = a.span.intersect(b.span) {
                    let b_cross = b.crossings;
                    for s in [ov.clamp(self.pull(id)), ov.clamp(self.pull(oid))] {
                        self.push_candidate(Candidate {
                            bends: 0,
                            crossings: a.crossings + b_cross,
                            length: self.trace_len(id, s) + self.trace_len(oid, s),
                            branches: false,
                            near: id,
                            near_entry: s,
                            bridge: None,
                            far: FarSide::Active { id: oid, entry: s },
                        });
                    }
                }
            }
        }
        // Crossing: perpendicular active of the other front through us.
        let perp = a.axis().perpendicular();
        let lanes = &self.index[other.idx()][axis_idx(perp)];
        let mut hits: Vec<(usize, i32, i32)> = Vec::new();
        for (&t, ids) in lanes.range(a.span.lo()..=a.span.hi()) {
            for &oid in ids {
                let b = &self.arena[oid];
                if b.alive && b.span.contains(a.track) {
                    hits.push((oid, t, a.track));
                }
            }
        }
        for (oid, s_near, s_far) in hits {
            let b_cross = self.arena[oid].crossings;
            self.push_candidate(Candidate {
                bends: 0,
                crossings: a.crossings + b_cross,
                length: self.trace_len(id, s_near) + self.trace_len(oid, s_far),
                branches: false,
                near: id,
                near_entry: s_near,
                bridge: None,
                far: FarSide::Active { id: oid, entry: s_far },
            });
        }
    }

    /// Builds the wire geometry of one candidate.
    fn build(&self, c: &Candidate) -> Vec<Segment> {
        let mut segments = Vec::new();
        if let Some(b) = c.bridge {
            if !b.is_point() {
                segments.push(b);
            }
        }
        self.trace_into(c.near, c.near_entry, &mut segments);
        if let FarSide::Active { id, entry } = c.far {
            self.trace_into(id, entry, &mut segments);
        }
        merge_collinear(segments)
    }

    /// Builds the wire for the best candidate
    /// (`RECONSTRUCT_SOLUTION` / `RECONSTRUCT_PATH`).
    ///
    /// Candidates of one terminating generation can still differ in
    /// total bends (the two fronts' generations mix), so the actual
    /// geometric bend count ranks first — the paper's primary
    /// objective — followed by crossovers and length (swapped under
    /// `-s`), then the branch-avoidance preference.
    fn reconstruct(&mut self) -> Connection {
        if tracing::enabled(tracing::Level::TRACE) {
            for c in &self.candidates {
                tracing::trace!(
                    "candidate",
                    bends = c.bends,
                    crossings = c.crossings,
                    length = c.length,
                    near = c.near as u64,
                    entry = c.near_entry,
                    far = format!("{:?}", c.far),
                );
            }
        }
        let swap = self.swap_tiebreak;
        let best = self
            .candidates
            .iter()
            .min_by_key(|c| {
                let (x, y) = if swap {
                    (c.length, c.crossings)
                } else {
                    (c.crossings, c.length)
                };
                (c.bends, x, y, c.branches as u32, c.near_entry)
            })
            .expect("reconstruct called with candidates")
            .clone();
        Connection {
            segments: self.build(&best),
            crossings: best.crossings,
        }
    }

    fn trace_into(&self, id: usize, entry: i32, out: &mut Vec<Segment>) {
        let mut cur = id;
        let mut coord = entry;
        while let Some(parent) = self.arena[cur].parent {
            let a = &self.arena[cur];
            let pt = self.arena[parent].track;
            if coord != pt {
                out.push(Segment::on_axis(
                    a.axis(),
                    a.track,
                    Interval::new(coord.min(pt), coord.max(pt)),
                ));
            }
            coord = a.track;
            cur = parent;
        }
    }
}

/// Direction a border active expands in: perpendicular borders of an
/// up/down sweep expand left or right; of a left/right sweep, down or
/// up. `towards_low` selects the lower-coordinate side.
fn border_dir(sweep: Dir, towards_low: bool) -> Dir {
    match (sweep.axis(), towards_low) {
        (Axis::Vertical, true) => Dir::Left,
        (Axis::Vertical, false) => Dir::Right,
        (Axis::Horizontal, true) => Dir::Down,
        (Axis::Horizontal, false) => Dir::Up,
    }
}

/// Progress (in sweep steps from the originator) of the nearest point
/// of a border piece.
fn prog_of(span: Interval, a: &Active, step: i32) -> i32 {
    let d0 = (span.lo() - a.track) * step;
    let d1 = (span.hi() - a.track) * step;
    d0.min(d1)
}

/// Splits segments at every junction point (an endpoint of one segment
/// lying on another), so that all bends *and branch nodes* of a net are
/// segment endpoints in the obstacle map. The sweep's endpoint-blocking
/// rule then protects T-junctions of multipoint nets from other nets
/// sliding along them.
pub(crate) fn split_at_junctions(segs: &[Segment]) -> Vec<Segment> {
    let endpoints: Vec<Point> = segs
        .iter()
        .flat_map(|s| {
            let (a, b) = s.endpoints();
            [a, b]
        })
        .collect();
    let mut out = Vec::with_capacity(segs.len());
    for s in segs {
        let mut cuts: Vec<i32> = endpoints
            .iter()
            .filter(|p| s.contains(**p))
            .map(|p| match s.axis() {
                Axis::Horizontal => p.x,
                Axis::Vertical => p.y,
            })
            .collect();
        cuts.push(s.span().lo());
        cuts.push(s.span().hi());
        cuts.sort_unstable();
        cuts.dedup();
        if cuts.len() <= 2 {
            out.push(*s);
            continue;
        }
        for w in cuts.windows(2) {
            out.push(Segment::on_axis(s.axis(), s.track(), Interval::new(w[0], w[1])));
        }
    }
    out
}

/// Merges collinear touching segments and drops zero-length ones.
pub(crate) fn merge_collinear(mut segs: Vec<Segment>) -> Vec<Segment> {
    segs.retain(|s| !s.is_point());
    let mut out: Vec<Segment> = Vec::new();
    'next: for s in segs {
        for o in &mut out {
            if let Some(m) = o.merge(&s) {
                *o = m;
                continue 'next;
            }
        }
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BudgetBreach;

    fn nid() -> NetId {
        NetId::from_index(0)
    }

    /// An empty plane bounded by a border box.
    fn bounded(w: i32, h: i32) -> ObstacleMap {
        let mut m = ObstacleMap::new();
        m.add_rect(
            &netart_geom::Rect::new(Point::new(0, 0), w, h),
            ObstacleKind::Module,
        );
        m
    }

    fn route_two(map: &ObstacleMap, a: (Point, Dir), b: (Point, Dir)) -> Option<Connection> {
        let mut s = Search::new(map, nid(), false, 32);
        s.seed(Front::A, a.0, a.1);
        s.seed(Front::B, b.0, b.1);
        s.run(&mut BudgetMeter::unlimited()).connected()
    }

    fn covers(conn: &Connection, p: Point) -> bool {
        conn.segments.iter().any(|s| s.contains(p))
    }

    #[test]
    fn straight_line_between_facing_points() {
        let map = bounded(20, 10);
        let conn = route_two(
            &map,
            (Point::new(2, 5), Dir::Right),
            (Point::new(15, 5), Dir::Left),
        )
        .expect("straight route");
        assert_eq!(conn.segments.len(), 1);
        assert_eq!(conn.segments[0], Segment::horizontal(5, 2, 15));
        assert_eq!(conn.crossings, 0);
    }

    #[test]
    fn l_route_between_perpendicular_points() {
        let map = bounded(20, 20);
        let conn = route_two(
            &map,
            (Point::new(5, 5), Dir::Right),
            (Point::new(12, 12), Dir::Down),
        )
        .expect("L route");
        assert!(covers(&conn, Point::new(5, 5)), "{:?}", conn.segments);
        assert!(covers(&conn, Point::new(12, 12)), "{:?}", conn.segments);
        // Minimum-bend path: a single corner.
        let path = netart_diagram::NetPath::from_segments(conn.segments.clone());
        assert_eq!(path.bends(), 1, "{:?}", conn.segments);
        assert!(path.connects(&[Point::new(5, 5), Point::new(12, 12)]));
    }

    #[test]
    fn routes_around_a_wall() {
        let mut map = bounded(30, 20);
        // A wall with a gap at the top.
        map.add(Segment::vertical(15, 0, 16), ObstacleKind::Module);
        let conn = route_two(
            &map,
            (Point::new(5, 5), Dir::Right),
            (Point::new(25, 5), Dir::Left),
        )
        .expect("detour");
        let path = netart_diagram::NetPath::from_segments(conn.segments.clone());
        assert!(path.connects(&[Point::new(5, 5), Point::new(25, 5)]));
        // Must climb above y = 16 to clear the wall.
        assert!(
            conn.segments.iter().any(|s| s.span().hi() >= 17 || s.track() >= 17),
            "{:?}",
            conn.segments
        );
        // Both terminals leave horizontally at y = 5, so the detour
        // needs an up-over-down excursion: 4 bends is the minimum.
        assert_eq!(path.bends(), 4, "minimal detour");
    }

    #[test]
    fn no_route_through_closed_box() {
        let mut map = bounded(30, 20);
        // Fully enclose the target point.
        map.add_rect(
            &netart_geom::Rect::new(Point::new(20, 5), 6, 6),
            ObstacleKind::Module,
        );
        let conn = route_two(
            &map,
            (Point::new(5, 8), Dir::Right),
            (Point::new(23, 8), Dir::Right),
        );
        assert!(conn.is_none());
    }

    #[test]
    fn crossing_a_net_is_allowed_and_counted() {
        let mut map = bounded(20, 10);
        // A foreign net crossing the straight path vertically.
        map.add(
            Segment::vertical(10, 1, 9),
            ObstacleKind::Net(NetId::from_index(7)),
        );
        let conn = route_two(
            &map,
            (Point::new(2, 5), Dir::Right),
            (Point::new(17, 5), Dir::Left),
        )
        .expect("crossing allowed");
        assert_eq!(conn.segments.len(), 1, "still straight: {:?}", conn.segments);
        assert_eq!(conn.crossings, 1);
    }

    #[test]
    fn net_endpoints_block() {
        let mut map = bounded(20, 10);
        // Foreign net whose endpoint (a bend) sits right on the path.
        map.add(
            Segment::vertical(10, 5, 9),
            ObstacleKind::Net(NetId::from_index(7)),
        );
        let conn = route_two(
            &map,
            (Point::new(2, 5), Dir::Right),
            (Point::new(17, 5), Dir::Left),
        )
        .expect("detour around the endpoint");
        let path = netart_diagram::NetPath::from_segments(conn.segments.clone());
        assert!(path.connects(&[Point::new(2, 5), Point::new(17, 5)]));
        assert!(path.bends() >= 2, "{:?}", conn.segments);
        // The wire never touches the blocked endpoint.
        assert!(!covers(&conn, Point::new(10, 5)), "{:?}", conn.segments);
    }

    #[test]
    fn claims_block_until_lifted() {
        let mut map = bounded(20, 10);
        map.add_point(Point::new(10, 5), ObstacleKind::Claim(NetId::from_index(3)));
        let conn = route_two(
            &map,
            (Point::new(2, 5), Dir::Right),
            (Point::new(17, 5), Dir::Left),
        )
        .expect("detour around claim");
        assert!(!covers(&conn, Point::new(10, 5)));
        map.remove_claims_of(NetId::from_index(3));
        let conn = route_two(
            &map,
            (Point::new(2, 5), Dir::Right),
            (Point::new(17, 5), Dir::Left),
        )
        .expect("straight after lifting");
        assert_eq!(conn.segments.len(), 1);
    }

    #[test]
    fn expand_net_joins_existing_segment() {
        let mut map = bounded(20, 20);
        map.add(Segment::horizontal(10, 5, 15), ObstacleKind::Net(nid()));
        let mut s = Search::new(&map, nid(), false, 32);
        s.seed(Front::A, Point::new(10, 3), Dir::Up);
        let conn = s
            .run(&mut BudgetMeter::unlimited())
            .connected()
            .expect("join own net");
        let path = netart_diagram::NetPath::from_segments(conn.segments.clone());
        assert!(path.connects(&[Point::new(10, 3)]));
        // The join lands on the existing wire.
        assert!(
            conn.segments
                .iter()
                .any(|s| s.contains(Point::new(10, 10))
                    || Segment::horizontal(10, 5, 15).crossing(s).is_some()),
            "{:?}",
            conn.segments
        );
    }

    #[test]
    fn min_bend_path_preferred_over_shorter() {
        // A scenario where the geometrically shortest route needs more
        // bends: line expansion returns the bend-minimal one.
        let mut map = bounded(40, 30);
        // Comb obstacles forcing a zig-zag on the direct corridor.
        map.add(Segment::vertical(10, 0, 14), ObstacleKind::Module);
        map.add(Segment::vertical(20, 6, 30), ObstacleKind::Module);
        map.add(Segment::vertical(30, 0, 14), ObstacleKind::Module);
        let conn = route_two(
            &map,
            (Point::new(2, 10), Dir::Right),
            (Point::new(38, 10), Dir::Left),
        )
        .expect("route exists");
        let path = netart_diagram::NetPath::from_segments(conn.segments.clone());
        assert!(path.connects(&[Point::new(2, 10), Point::new(38, 10)]));
        // Every wall reaches a border, so the path must zig-zag: above
        // y=14 at x=10, below y=6 at x=20, above y=14 at x=30. Any such
        // rectilinear path starting and ending horizontally at y=10 has
        // at least 8 bends; line expansion must find exactly that.
        assert_eq!(path.bends(), 8, "{:?}", conn.segments);
    }

    #[test]
    fn tiny_node_budget_reports_over_budget() {
        let mut map = bounded(40, 30);
        map.add(Segment::vertical(10, 0, 14), ObstacleKind::Module);
        map.add(Segment::vertical(20, 6, 30), ObstacleKind::Module);
        map.add(Segment::vertical(30, 0, 14), ObstacleKind::Module);
        let mut s = Search::new(&map, nid(), false, 32);
        s.seed(Front::A, Point::new(2, 10), Dir::Right);
        s.seed(Front::B, Point::new(38, 10), Dir::Left);
        let mut meter = BudgetMeter::start(crate::Budget::new().with_node_limit(1));
        match s.run(&mut meter) {
            SearchResult::OverBudget => {}
            other => panic!("expected over-budget, got {other:?}"),
        }
        assert_eq!(meter.breach(), Some(BudgetBreach::Nodes));
    }

    #[test]
    fn merge_collinear_compacts() {
        let merged = merge_collinear(vec![
            Segment::horizontal(0, 0, 3),
            Segment::horizontal(0, 3, 6),
            Segment::vertical(6, 0, 0), // zero-length: dropped
            Segment::vertical(6, 0, 4),
        ]);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&Segment::horizontal(0, 0, 6)));
    }
}
