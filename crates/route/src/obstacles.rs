//! The obstacle configuration of the routing plane (§5.6.2).
//!
//! Obstacles are axis-aligned segments indexed per axis and track:
//! `horizontal-segments` and `vertical-segments` in the paper. Module
//! boundary edges, the plane border, system terminal points, routed net
//! segments and claimpoints all live here. A sweep moving vertically
//! consults horizontal obstacles and vice versa.

use std::collections::BTreeMap;

use netart_geom::{Axis, Dir, Interval, Point, Rect, Segment};
use netart_netlist::NetId;

/// What an obstacle is; the router reacts differently to each kind
/// (§5.6.3 `EXPAND_SEGMENT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObstacleKind {
    /// A module bounding edge, plane border or system terminal point:
    /// blocks expansion outright.
    Module,
    /// A routed net segment: its endpoints (bends) block, its interior
    /// may be crossed perpendicular.
    Net(NetId),
    /// A claimpoint reserving the track in front of a terminal of the
    /// given net (§5.7): blocks like a module until lifted.
    Claim(NetId),
}

/// One obstacle: a span on a track with a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obstacle {
    /// The range along the track's axis.
    pub span: Interval,
    /// What it is.
    pub kind: ObstacleKind,
}

/// Per-axis, per-track obstacle store.
///
/// # Examples
///
/// ```
/// use netart_geom::{Axis, Interval, Point, Rect};
/// use netart_route::{ObstacleKind, ObstacleMap};
///
/// let mut map = ObstacleMap::new();
/// map.add_rect(&Rect::new(Point::new(2, 2), 4, 2), ObstacleKind::Module);
/// // The module's bottom edge blocks an upward sweep at y = 2.
/// let hit = map.at(Axis::Horizontal, 2);
/// assert_eq!(hit.len(), 1);
/// assert_eq!(hit[0].span, Interval::new(2, 6));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObstacleMap {
    horizontal: BTreeMap<i32, Vec<Obstacle>>, // key: y; spans are x ranges
    vertical: BTreeMap<i32, Vec<Obstacle>>,   // key: x; spans are y ranges
}

impl ObstacleMap {
    /// An empty plane.
    pub fn new() -> Self {
        ObstacleMap::default()
    }

    fn lanes(&self, axis: Axis) -> &BTreeMap<i32, Vec<Obstacle>> {
        match axis {
            Axis::Horizontal => &self.horizontal,
            Axis::Vertical => &self.vertical,
        }
    }

    fn lanes_mut(&mut self, axis: Axis) -> &mut BTreeMap<i32, Vec<Obstacle>> {
        match axis {
            Axis::Horizontal => &mut self.horizontal,
            Axis::Vertical => &mut self.vertical,
        }
    }

    /// Adds a segment obstacle.
    ///
    /// Net segments are automatically *capped*: their two endpoints are
    /// also registered as degenerate obstacles on the perpendicular
    /// axis. Endpoints are the bends/terminals of a wire, which the
    /// paper's model blocks from every direction — without the caps, a
    /// sweep running parallel to the segment could slide onto it past
    /// an endpoint. (Wires produced by the router are structurally
    /// capped already; the explicit caps make hand-built maps equally
    /// safe.)
    pub fn add(&mut self, seg: Segment, kind: ObstacleKind) {
        self.lanes_mut(seg.axis())
            .entry(seg.track())
            .or_default()
            .push(Obstacle { span: seg.span(), kind });
        if matches!(kind, ObstacleKind::Net(_)) && !seg.is_point() {
            let (a, b) = seg.endpoints();
            for p in [a, b] {
                let cap = match seg.axis() {
                    Axis::Horizontal => Segment::vertical(p.x, p.y, p.y),
                    Axis::Vertical => Segment::horizontal(p.y, p.x, p.x),
                };
                self.lanes_mut(cap.axis())
                    .entry(cap.track())
                    .or_default()
                    .push(Obstacle { span: cap.span(), kind });
            }
        }
    }

    /// Adds the four boundary edges of a rectangle (a module bounding
    /// or the plane border). A degenerate rectangle adds point
    /// obstacles on both axes, matching the paper's treatment of system
    /// terminals.
    pub fn add_rect(&mut self, rect: &Rect, kind: ObstacleKind) {
        if rect.width() == 0 && rect.height() == 0 {
            self.add_point(rect.lower_left(), kind);
            return;
        }
        for e in rect.edges() {
            self.add(e, kind);
        }
    }

    /// Adds a point obstacle visible to sweeps on both axes.
    pub fn add_point(&mut self, p: Point, kind: ObstacleKind) {
        self.add(Segment::horizontal(p.y, p.x, p.x), kind);
        self.add(Segment::vertical(p.x, p.y, p.y), kind);
    }

    /// The obstacles on a track, in insertion order (empty slice when
    /// the track is clear).
    pub fn at(&self, axis: Axis, track: i32) -> &[Obstacle] {
        self.lanes(axis)
            .get(&track)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The next track strictly beyond `from` in direction `dir` that
    /// holds any obstacle of the axis perpendicular to `dir` — the "next
    /// row with obstacles" step of the sweep. For `Dir::Up`/`Down` this
    /// walks horizontal tracks, for `Left`/`Right` vertical ones.
    pub fn next_track(&self, dir: Dir, from: i32) -> Option<i32> {
        let lanes = self.lanes(dir.segment_axis());
        match dir {
            Dir::Up | Dir::Right => lanes.range(from + 1..).next().map(|(&t, _)| t),
            Dir::Down | Dir::Left => lanes.range(..from).next_back().map(|(&t, _)| t),
        }
    }

    /// Removes every obstacle matching `pred`. Returns how many were
    /// dropped.
    pub fn retain_not(&mut self, mut pred: impl FnMut(Axis, i32, &Obstacle) -> bool) -> usize {
        let mut removed = 0;
        for (axis, lanes) in [
            (Axis::Horizontal, &mut self.horizontal),
            (Axis::Vertical, &mut self.vertical),
        ] {
            lanes.retain(|&track, v| {
                let before = v.len();
                v.retain(|o| !pred(axis, track, o));
                removed += before - v.len();
                !v.is_empty()
            });
        }
        removed
    }

    /// Removes all obstacles belonging to a net (segments and claims).
    pub fn remove_net(&mut self, net: NetId) -> usize {
        self.retain_not(|_, _, o| matches!(o.kind, ObstacleKind::Net(n) if n == net))
    }

    /// Lifts the claimpoints of one net (§5.7: "when the routing of A
    /// and B starts, both their claimpoints are removed").
    pub fn remove_claims_of(&mut self, net: NetId) -> usize {
        self.retain_not(|_, _, o| matches!(o.kind, ObstacleKind::Claim(n) if n == net))
    }

    /// Lifts every remaining claimpoint (before the retry pass).
    pub fn remove_all_claims(&mut self) -> usize {
        self.retain_not(|_, _, o| matches!(o.kind, ObstacleKind::Claim(_)))
    }

    /// `true` when `p` lies on an obstacle for which `pred` holds, on
    /// either axis.
    pub fn point_matches(&self, p: Point, mut pred: impl FnMut(&Obstacle) -> bool) -> bool {
        self.at(Axis::Horizontal, p.y)
            .iter()
            .any(|o| o.span.contains(p.x) && pred(o))
            || self
                .at(Axis::Vertical, p.x)
                .iter()
                .any(|o| o.span.contains(p.y) && pred(o))
    }

    /// Total number of stored obstacles (diagnostics).
    pub fn len(&self) -> usize {
        self.horizontal.values().map(Vec::len).sum::<usize>()
            + self.vertical.values().map(Vec::len).sum::<usize>()
    }

    /// `true` when the plane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(i: usize) -> NetId {
        NetId::from_index(i)
    }

    #[test]
    fn rect_contributes_four_edges() {
        let mut m = ObstacleMap::new();
        m.add_rect(&Rect::new(Point::new(0, 0), 4, 2), ObstacleKind::Module);
        assert_eq!(m.len(), 4);
        assert_eq!(m.at(Axis::Horizontal, 0).len(), 1); // bottom
        assert_eq!(m.at(Axis::Horizontal, 2).len(), 1); // top
        assert_eq!(m.at(Axis::Vertical, 0).len(), 1); // left
        assert_eq!(m.at(Axis::Vertical, 4).len(), 1); // right
        assert!(m.at(Axis::Horizontal, 1).is_empty());
    }

    #[test]
    fn degenerate_rect_is_a_point_obstacle() {
        let mut m = ObstacleMap::new();
        m.add_rect(&Rect::new(Point::new(3, 5), 0, 0), ObstacleKind::Module);
        assert_eq!(m.at(Axis::Horizontal, 5).len(), 1);
        assert_eq!(m.at(Axis::Vertical, 3).len(), 1);
        assert!(m.point_matches(Point::new(3, 5), |_| true));
        assert!(!m.point_matches(Point::new(3, 6), |_| true));
    }

    #[test]
    fn next_track_walks_in_both_directions() {
        let mut m = ObstacleMap::new();
        m.add(Segment::horizontal(2, 0, 4), ObstacleKind::Module);
        m.add(Segment::horizontal(7, 0, 4), ObstacleKind::Module);
        assert_eq!(m.next_track(Dir::Up, 0), Some(2));
        assert_eq!(m.next_track(Dir::Up, 2), Some(7));
        assert_eq!(m.next_track(Dir::Up, 7), None);
        assert_eq!(m.next_track(Dir::Down, 9), Some(7));
        assert_eq!(m.next_track(Dir::Down, 2), None);
        // Vertical walks look at the other lane set.
        assert_eq!(m.next_track(Dir::Right, 0), None);
        m.add(Segment::vertical(5, 0, 4), ObstacleKind::Module);
        assert_eq!(m.next_track(Dir::Right, 0), Some(5));
        assert_eq!(m.next_track(Dir::Left, 9), Some(5));
    }

    #[test]
    fn removal_by_net_and_claims() {
        let mut m = ObstacleMap::new();
        // Each non-degenerate net segment also registers two endpoint
        // caps on the perpendicular axis: 3 entries per net.
        m.add(Segment::horizontal(0, 0, 4), ObstacleKind::Net(net(0)));
        m.add(Segment::horizontal(1, 0, 4), ObstacleKind::Net(net(1)));
        m.add_point(Point::new(9, 9), ObstacleKind::Claim(net(0)));
        m.add_point(Point::new(8, 8), ObstacleKind::Claim(net(1)));
        assert_eq!(m.len(), 10);
        assert_eq!(m.remove_claims_of(net(0)), 2);
        assert_eq!(m.remove_net(net(0)), 3);
        assert_eq!(m.remove_all_claims(), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.at(Axis::Horizontal, 1)[0].kind,
            ObstacleKind::Net(net(1))
        );
        // The caps sit on the vertical axis at the endpoints.
        assert_eq!(m.at(Axis::Vertical, 0).len(), 1);
        assert_eq!(m.at(Axis::Vertical, 4).len(), 1);
    }

    #[test]
    fn net_caps_block_sliding_along() {
        let mut m = ObstacleMap::new();
        m.add(Segment::vertical(5, 2, 8), ObstacleKind::Net(net(0)));
        // The endpoints appear in the horizontal lanes as degenerate
        // obstacles, so vertical sweeps at x=5 stop there.
        assert!(m
            .at(Axis::Horizontal, 2)
            .iter()
            .any(|o| o.span == Interval::point(5)));
        assert!(m
            .at(Axis::Horizontal, 8)
            .iter()
            .any(|o| o.span == Interval::point(5)));
    }

    #[test]
    fn point_matches_filters_by_kind() {
        let mut m = ObstacleMap::new();
        m.add(Segment::vertical(2, 0, 5), ObstacleKind::Net(net(3)));
        let on_net = |o: &Obstacle| matches!(o.kind, ObstacleKind::Net(_));
        assert!(m.point_matches(Point::new(2, 3), on_net));
        assert!(!m.point_matches(Point::new(2, 3), |o| o.kind == ObstacleKind::Module));
    }

    #[test]
    fn empty_map() {
        let m = ObstacleMap::new();
        assert!(m.is_empty());
        assert_eq!(m.next_track(Dir::Up, 0), None);
        assert!(m.at(Axis::Vertical, 0).is_empty());
    }
}
