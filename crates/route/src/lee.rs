//! The Lee maze router (§5.2.2, after Lee 1961).
//!
//! Wave propagation on the unit grid: breadth-first expansion from the
//! source until the target is reached, guaranteeing a *minimum-length*
//! path whenever one exists. The schematic-diagram twist — nets may be
//! crossed perpendicular but never overlapped or turned upon — is
//! handled by searching over `(point, entry direction)` states: a step
//! onto a foreign net point must cross it straight.
//!
//! This is the comparison baseline of §5.4: complete like line
//! expansion, but optimising length instead of bends and scanning cell
//! by cell (slower on sparse planes, and its paths zig-zag).

use std::collections::{HashMap, VecDeque};

use netart_geom::{Axis, Dir, Point, Rect, Segment};
use netart_netlist::NetId;

use netart_diagram::NetPath;

use crate::budget::BudgetMeter;
use crate::expand::merge_collinear;
use crate::{ObstacleKind, ObstacleMap};

/// How a point may be used by a travelling wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    /// Free to enter, stop or turn.
    Free,
    /// Hard obstacle.
    Blocked,
    /// On a foreign net's interior running along `axis`: may only be
    /// crossed straight, perpendicular to that axis.
    NetInterior(Axis),
}

fn classify(map: &ObstacleMap, p: Point, net: NetId) -> Cell {
    let mut cell = Cell::Free;
    for (axis, track, coord) in [
        (Axis::Horizontal, p.y, p.x),
        (Axis::Vertical, p.x, p.y),
    ] {
        for o in map.at(axis, track) {
            if !o.span.contains(coord) {
                continue;
            }
            match o.kind {
                // The net's own claims never block it (§5.7).
                ObstacleKind::Claim(n) if n == net => {}
                ObstacleKind::Module | ObstacleKind::Claim(_) => return Cell::Blocked,
                ObstacleKind::Net(n) if n == net => return Cell::Blocked,
                ObstacleKind::Net(_) => {
                    // Endpoints (bends) block; interiors are crossable.
                    if coord == o.span.lo() || coord == o.span.hi() {
                        return Cell::Blocked;
                    }
                    cell = match cell {
                        // On two nets at once (their crossing point):
                        // nothing may pass through.
                        Cell::NetInterior(_) => return Cell::Blocked,
                        _ => Cell::NetInterior(axis),
                    };
                }
            }
        }
    }
    cell
}

/// Routes a two-point connection with wave propagation.
///
/// `bounds` limits the searched grid (the routing plane). `net` names
/// the connection so its own claim/terminal bookkeeping does not block
/// it; foreign nets are crossed per the schematic rules. Returns the
/// minimum-length path, or `None` when the target is unreachable.
pub fn route_two_points(
    map: &ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
    net: NetId,
) -> Option<NetPath> {
    route_two_points_metered(map, bounds, from, to, net, &mut BudgetMeter::unlimited())
}

/// Like [`route_two_points`], charging one budget unit per expanded
/// wave cell. A tripped meter abandons the search (`None`); check
/// [`BudgetMeter::breach`] to tell exhaustion from unreachability.
pub fn route_two_points_metered(
    map: &ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
    net: NetId,
    meter: &mut BudgetMeter,
) -> Option<NetPath> {
    if from == to {
        return Some(NetPath::from_segments(vec![Segment::point(Axis::Horizontal, from)]));
    }
    // State: (point, axis of motion that entered it).
    type State = (Point, Axis);
    let mut parent: HashMap<State, State> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();

    let start_ok = |q: Point| bounds.contains(q);
    for d in Dir::ALL {
        let q = from.step(d);
        if !start_ok(q) {
            continue;
        }
        let cell = if q == to { Cell::Free } else { classify(map, q, net) };
        let enterable = match cell {
            Cell::Free => true,
            Cell::Blocked => false,
            Cell::NetInterior(axis) => d.axis() != axis,
        };
        if enterable {
            let s = (q, d.axis());
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert((from, d.axis()));
                queue.push_back(s);
            }
        }
    }

    let mut goal: Option<State> = None;
    'bfs: while let Some((p, entered)) = queue.pop_front() {
        if p == to {
            goal = Some((p, entered));
            break 'bfs;
        }
        if meter.charge().is_some() {
            return None;
        }
        let here = classify(map, p, net);
        for d in Dir::ALL {
            // On a net interior we must keep going straight.
            if let Cell::NetInterior(axis) = here {
                if d.axis() == axis {
                    continue;
                }
                if d.axis() != entered {
                    continue;
                }
            }
            // Never immediately backtrack; BFS already saw it.
            let q = p.step(d);
            if !bounds.contains(q) {
                continue;
            }
            let cell = if q == to { Cell::Free } else { classify(map, q, net) };
            let enterable = match cell {
                Cell::Free => true,
                Cell::Blocked => false,
                Cell::NetInterior(axis) => d.axis() != axis,
            };
            if !enterable {
                continue;
            }
            let s = (q, d.axis());
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert((p, entered));
                queue.push_back(s);
            }
        }
    }

    let (mut p, mut axis) = goal?;
    // Trace back unit steps, then compact into segments.
    let mut pts = vec![p];
    while p != from {
        let &(q, qaxis) = parent.get(&(p, axis)).expect("reached states have parents");
        pts.push(q);
        p = q;
        axis = qaxis;
    }
    pts.reverse();
    let mut segs = Vec::new();
    for w in pts.windows(2) {
        if let Some(s) = Segment::between(w[0], w[1]) {
            segs.push(s);
        }
    }
    Some(NetPath::from_segments(merge_collinear(segs)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NetId {
        NetId::from_index(i)
    }

    fn plane(w: i32, h: i32) -> (ObstacleMap, Rect) {
        let bounds = Rect::new(Point::new(0, 0), w, h);
        let mut m = ObstacleMap::new();
        m.add_rect(&bounds, ObstacleKind::Module);
        // Search strictly inside the border.
        (m, bounds.inflate(-1))
    }

    #[test]
    fn straight_minimum_path() {
        let (m, b) = plane(20, 10);
        let p = route_two_points(&m, b, Point::new(2, 5), Point::new(15, 5), nid(0)).unwrap();
        assert_eq!(p.length(), 13);
        assert_eq!(p.bends(), 0);
    }

    #[test]
    fn l_path_is_minimal_length() {
        let (m, b) = plane(20, 20);
        let p = route_two_points(&m, b, Point::new(2, 2), Point::new(10, 9), nid(0)).unwrap();
        assert_eq!(p.length(), 8 + 7, "manhattan distance");
        assert!(p.connects(&[Point::new(2, 2), Point::new(10, 9)]));
    }

    #[test]
    fn detours_around_walls() {
        let (mut m, b) = plane(30, 20);
        m.add(Segment::vertical(15, 0, 16), ObstacleKind::Module);
        let p = route_two_points(&m, b, Point::new(5, 5), Point::new(25, 5), nid(0)).unwrap();
        assert!(p.connects(&[Point::new(5, 5), Point::new(25, 5)]));
        // Minimal length: out and back above y=16.
        assert_eq!(p.length(), 20 + 2 * (17 - 5));
    }

    #[test]
    fn unreachable_returns_none() {
        let (mut m, b) = plane(30, 20);
        m.add_rect(&Rect::new(Point::new(20, 5), 6, 6), ObstacleKind::Module);
        assert!(route_two_points(&m, b, Point::new(5, 8), Point::new(23, 8), nid(0)).is_none());
    }

    #[test]
    fn crosses_foreign_net_straight() {
        let (mut m, b) = plane(20, 10);
        m.add(Segment::vertical(10, 1, 9), ObstacleKind::Net(nid(7)));
        let p = route_two_points(&m, b, Point::new(2, 5), Point::new(17, 5), nid(0)).unwrap();
        assert_eq!(p.length(), 15, "straight across the net");
        assert_eq!(p.bends(), 0);
    }

    #[test]
    fn never_turns_on_a_net() {
        let (mut m, b) = plane(20, 10);
        // Foreign net along the shortest path's would-be corner.
        m.add(Segment::vertical(10, 1, 9), ObstacleKind::Net(nid(7)));
        let p = route_two_points(&m, b, Point::new(2, 5), Point::new(10, 9), nid(0));
        // Target itself is an endpoint of the foreign net: 10,9 lies on
        // the net at its endpoint... choose a clean target instead.
        let p2 = route_two_points(&m, b, Point::new(2, 5), Point::new(12, 8), nid(0)).unwrap();
        for seg in p2.segments() {
            // No bend at x=10 (on the foreign net).
            let _ = seg;
        }
        let path_pts_on_net: Vec<Point> = (1..=9)
            .map(|y| Point::new(10, y))
            .filter(|&q| p2.contains(q))
            .collect();
        // Crossing points are fine; but none of them may be a bend.
        let bends = p2.bends();
        let _ = bends;
        for q in path_pts_on_net {
            let on_h = p2
                .segments()
                .iter()
                .any(|s| s.axis() == Axis::Horizontal && s.contains(q) && !s.is_point());
            assert!(on_h, "point {q} on the net must be crossed horizontally");
        }
        let _ = p;
    }

    #[test]
    fn budget_abandons_search() {
        let (m, b) = plane(30, 20);
        let mut meter = BudgetMeter::start(crate::Budget::new().with_node_limit(3));
        let p = route_two_points_metered(
            &m,
            b,
            Point::new(2, 2),
            Point::new(27, 17),
            nid(0),
            &mut meter,
        );
        assert!(p.is_none());
        assert!(meter.breach().is_some());
    }

    #[test]
    fn coincident_endpoints() {
        let (m, b) = plane(10, 10);
        let p = route_two_points(&m, b, Point::new(5, 5), Point::new(5, 5), nid(0)).unwrap();
        assert_eq!(p.length(), 0);
        assert!(p.connects(&[Point::new(5, 5)]));
    }
}
