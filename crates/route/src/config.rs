/// The order nets are attempted in. The paper routes in definition
/// order and notes in §7 that "it is probably better to construct a
/// certain criterion for selecting the next net to be routed" — these
/// are the obvious criteria, benchmarked in the ablation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrder {
    /// Net-list definition order (the paper's behaviour).
    #[default]
    Definition,
    /// Widest nets first: many-pin nets route while the plane is
    /// still empty.
    MostPinsFirst,
    /// Narrow nets first.
    FewestPinsFirst,
}

use crate::{Budget, CancelToken};

/// Routing options, mirroring the `eureka` command line of Appendix F.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteConfig {
    /// Tracks between the diagram bounding box and the routing plane
    /// border on each side `[left, right, down, up]`. The `-l`, `-r`,
    /// `-d`, `-u` flags of Appendix F fix a border *at* the box
    /// (margin 2: the border sits one track beyond the single remaining
    /// routing track), forcing outgoing nets to hug the box edge.
    pub margins: [i32; 4],
    /// Enable claimpoints (§5.7). On by default; the paper reports a
    /// ~75% drop in unroutable nets from this extension.
    pub claimpoints: bool,
    /// Retry nets that failed in the first pass after lifting every
    /// remaining claimpoint (§5.7, figure 6.14/6.15 discussion).
    pub retry_failed: bool,
    /// Swap the tie-break order (`-s`): prefer minimum wire length over
    /// minimum crossovers among the minimum-bend paths.
    pub swap_tiebreak: bool,
    /// Safety valve: abandon a connection after this many bend
    /// generations. Generous enough to never trigger on real diagrams.
    pub max_bends: u32,
    /// The order nets are attempted in (§7 extension).
    pub order: NetOrder,
    /// Per-net search budget. Unlimited by default, so the search runs
    /// to exhaustion exactly as the paper describes.
    pub budget: Budget,
    /// Run the salvage cascade on nets the main passes could not
    /// route: rip-up-and-retry with an escalated budget, then the Lee
    /// fallback, then an explicit ghost wire. On by default; it only
    /// engages after a net has already failed, so clean runs are
    /// untouched.
    pub salvage: bool,
    /// Cooperative cancellation for the whole routing run: every
    /// per-net meter checks the token on the deadline-poll cadence,
    /// and a cancelled run stops attempting (and salvaging) further
    /// nets. `None` (the default) means not cancellable.
    pub cancel: Option<CancelToken>,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            margins: [4; 4],
            claimpoints: true,
            retry_failed: true,
            swap_tiebreak: false,
            max_bends: 64,
            order: NetOrder::Definition,
            budget: Budget::UNLIMITED,
            salvage: true,
            cancel: None,
        }
    }
}

impl RouteConfig {
    /// The default configuration.
    pub fn new() -> Self {
        RouteConfig::default()
    }

    /// Disables claimpoints (for the §5.7 ablation).
    pub fn without_claimpoints(mut self) -> Self {
        self.claimpoints = false;
        self
    }

    /// Disables the retry pass.
    pub fn without_retry(mut self) -> Self {
        self.retry_failed = false;
        self
    }

    /// Swaps the tie-break order (`-s`).
    pub fn with_swapped_tiebreak(mut self) -> Self {
        self.swap_tiebreak = true;
        self
    }

    /// Sets a uniform plane margin.
    pub fn with_margin(mut self, tracks: i32) -> Self {
        self.margins = [tracks.max(1); 4];
        self
    }

    /// Fixes the left border at the diagram box (`-l`).
    pub fn with_fixed_left(mut self) -> Self {
        self.margins[0] = 2;
        self
    }

    /// Fixes the right border at the diagram box (`-r`).
    pub fn with_fixed_right(mut self) -> Self {
        self.margins[1] = 2;
        self
    }

    /// Fixes the lower border at the diagram box (`-d`).
    pub fn with_fixed_down(mut self) -> Self {
        self.margins[2] = 2;
        self
    }

    /// Fixes the upper border at the diagram box (`-u`).
    pub fn with_fixed_up(mut self) -> Self {
        self.margins[3] = 2;
        self
    }

    /// Sets the net selection order (§7 extension).
    pub fn with_order(mut self, order: NetOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the per-net search budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Disables the salvage cascade: failed nets are reported and left
    /// unrouted, as in the paper.
    pub fn without_salvage(mut self) -> Self {
        self.salvage = false;
        self
    }

    /// Attaches a cooperative cancellation token (watchdogs, batch
    /// drain). Cancellation makes in-flight searches breach with
    /// [`crate::BudgetBreach::Cancelled`] and skips remaining nets.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = RouteConfig::default();
        assert_eq!(c.margins, [4; 4]);
        assert!(c.claimpoints);
        assert!(c.retry_failed);
        assert!(!c.swap_tiebreak);
        assert!(c.budget.is_unlimited());
        assert!(c.salvage);
        assert_eq!(RouteConfig::new(), c);
    }

    #[test]
    fn budget_and_salvage_builders() {
        let c = RouteConfig::new()
            .with_budget(Budget::new().with_node_limit(500))
            .without_salvage();
        assert_eq!(c.budget.nodes, Some(500));
        assert!(!c.salvage);
    }

    #[test]
    fn builders() {
        let c = RouteConfig::new()
            .without_claimpoints()
            .without_retry()
            .with_swapped_tiebreak()
            .with_margin(7)
            .with_fixed_left()
            .with_fixed_up();
        assert!(!c.claimpoints && !c.retry_failed && c.swap_tiebreak);
        assert_eq!(c.margins, [2, 7, 7, 2]);
    }

    #[test]
    fn margin_clamped_to_one() {
        assert_eq!(RouteConfig::new().with_margin(0).margins, [1; 4]);
    }

    #[test]
    fn order_defaults_to_definition() {
        assert_eq!(RouteConfig::new().order, NetOrder::Definition);
        let c = RouteConfig::new().with_order(NetOrder::MostPinsFirst);
        assert_eq!(c.order, NetOrder::MostPinsFirst);
    }
}
