//! The Hightower line router (§5.2.3, after Hightower 1969).
//!
//! Escape-line search: run maximal horizontal and vertical probe lines
//! from both terminals; each iteration picks, for the newest line of a
//! side, an *escape point* and erects the longest perpendicular escape
//! line through it; a connection is found when lines of the two sides
//! intersect. Fast on simple planes and bend-frugal, but — unlike line
//! expansion — it tracks only one escape line per step, so it *can
//! fail on mazes that have a solution* and it gives up after a bounded
//! number of iterations. That incompleteness is exactly the weakness
//! §5.4 cites when motivating the line-expansion router; the benchmark
//! suite measures it.
//!
//! Simplifications versus the 1969 paper: escape points are tried at
//! the line ends and at the projection of the goal (instead of the full
//! cover-based enumeration), and only `Module` obstacles block probes
//! (nets are ignored, as in a first-pass sketch router).

use netart_geom::{Axis, Interval, Point, Rect, Segment};

use netart_diagram::NetPath;

use crate::expand::merge_collinear;
use crate::{ObstacleKind, ObstacleMap};

/// Hard iteration bound: the router admits defeat beyond this.
const MAX_ITERATIONS: usize = 64;

#[derive(Debug, Clone)]
struct Probe {
    seg: Segment,
    /// The point on the parent line this probe was erected from.
    pivot: Point,
    parent: Option<usize>,
}

/// Maximal free segment through `p` along `axis`, stopped by `Module`
/// obstacles and the `bounds` rectangle.
fn maximal_line(map: &ObstacleMap, bounds: Rect, p: Point, axis: Axis) -> Segment {
    let (track, coord, limit) = match axis {
        Axis::Horizontal => (p.y, p.x, bounds.x_span()),
        Axis::Vertical => (p.x, p.y, bounds.y_span()),
    };
    let mut lo = limit.lo();
    let mut hi = limit.hi();
    // Perpendicular obstacle lanes cut the line.
    let perp = axis.perpendicular();
    for t in limit.lo()..=limit.hi() {
        for o in map.at(perp, t) {
            if o.kind != ObstacleKind::Module || !o.span.contains(track) {
                continue;
            }
            if t < coord {
                lo = lo.max(t + 1);
            } else if t > coord {
                hi = hi.min(t - 1);
            } else {
                // The point itself sits on an obstacle line: keep the
                // degenerate probe.
                lo = coord;
                hi = coord;
            }
        }
    }
    Segment::on_axis(axis, track, Interval::new(lo.min(coord), hi.max(coord)))
}

fn trace(probes: &[Probe], mut idx: usize, mut at: Point, out: &mut Vec<Segment>) {
    loop {
        let p = &probes[idx];
        if let Some(seg) = Segment::between(at, p.pivot) {
            out.push(seg);
        }
        at = p.pivot;
        match p.parent {
            Some(parent) => idx = parent,
            None => break,
        }
    }
}

/// Routes a two-point connection with escape lines.
///
/// Returns `None` when the iteration bound is hit — which, for this
/// class of router, can happen even though a path exists.
pub fn route_two_points(
    map: &ObstacleMap,
    bounds: Rect,
    from: Point,
    to: Point,
) -> Option<NetPath> {
    let mut sides: [Vec<Probe>; 2] = [Vec::new(), Vec::new()];
    for (i, p) in [(0, from), (1, to)] {
        for axis in [Axis::Horizontal, Axis::Vertical] {
            sides[i].push(Probe {
                seg: maximal_line(map, bounds, p, axis),
                pivot: p,
                parent: None,
            });
        }
    }

    let goal = [from, to];
    for iteration in 0..MAX_ITERATIONS {
        // Check intersections between the two sides.
        for (ai, a) in sides[0].iter().enumerate() {
            for (bi, b) in sides[1].iter().enumerate() {
                let meet = a
                    .seg
                    .crossing(&b.seg)
                    .or_else(|| a.seg.overlap(&b.seg).map(|ov| ov.endpoints().0));
                if let Some(x) = meet {
                    let mut segs = Vec::new();
                    trace(&sides[0], ai, x, &mut segs);
                    trace(&sides[1], bi, x, &mut segs);
                    return Some(NetPath::from_segments(merge_collinear(segs)));
                }
            }
        }

        // Erect one escape line on the alternating side.
        let side = iteration % 2;
        let target = goal[1 - side];
        let base_idx = sides[side].len() - 1;
        let base = sides[side][base_idx].seg;
        // Candidate escape points: projection of the target, then the
        // line ends.
        let (elo, ehi) = base.endpoints();
        let proj = match base.axis() {
            Axis::Horizontal => Point::new(base.span().clamp(target.x), base.track()),
            Axis::Vertical => Point::new(base.track(), base.span().clamp(target.y)),
        };
        let mut best: Option<(u32, Probe)> = None;
        for pivot in [proj, elo, ehi] {
            let esc = maximal_line(map, bounds, pivot, base.axis().perpendicular());
            let known = sides[side].iter().any(|p| p.seg == esc);
            if known {
                continue;
            }
            let score = esc.len();
            let probe = Probe {
                seg: esc,
                pivot,
                parent: Some(base_idx),
            };
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, probe));
            }
        }
        match best {
            Some((_, probe)) => sides[side].push(probe),
            // No new escape line: stuck.
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(w: i32, h: i32) -> (ObstacleMap, Rect) {
        let bounds = Rect::new(Point::new(0, 0), w, h);
        let mut m = ObstacleMap::new();
        m.add_rect(&bounds, ObstacleKind::Module);
        (m, bounds.inflate(-1))
    }

    #[test]
    fn straight_connection() {
        let (m, b) = plane(20, 10);
        let p = route_two_points(&m, b, Point::new(2, 5), Point::new(15, 5)).unwrap();
        assert!(p.connects(&[Point::new(2, 5), Point::new(15, 5)]));
        assert_eq!(p.bends(), 0);
    }

    #[test]
    fn l_connection_single_bend() {
        let (m, b) = plane(20, 20);
        let p = route_two_points(&m, b, Point::new(2, 2), Point::new(10, 9)).unwrap();
        assert!(p.connects(&[Point::new(2, 2), Point::new(10, 9)]));
        assert_eq!(p.bends(), 1, "{:?}", p.segments());
    }

    #[test]
    fn simple_detour() {
        let (mut m, b) = plane(30, 20);
        m.add(Segment::vertical(15, 0, 16), ObstacleKind::Module);
        let p = route_two_points(&m, b, Point::new(5, 5), Point::new(25, 5))
            .expect("a simple single wall is within this router's power");
        assert!(p.connects(&[Point::new(5, 5), Point::new(25, 5)]));
    }

    #[test]
    fn gives_up_on_hard_maze() {
        // A spiral around the target: solvable (Lee/line-expansion find
        // it) but beyond the one-escape-line heuristic.
        let (mut m, b) = plane(40, 40);
        m.add(Segment::vertical(10, 5, 35), ObstacleKind::Module);
        m.add(Segment::horizontal(35, 10, 30), ObstacleKind::Module);
        m.add(Segment::vertical(30, 10, 35), ObstacleKind::Module);
        m.add(Segment::horizontal(10, 15, 30), ObstacleKind::Module);
        m.add(Segment::vertical(15, 10, 30), ObstacleKind::Module);
        m.add(Segment::horizontal(30, 15, 25), ObstacleKind::Module);
        m.add(Segment::vertical(25, 15, 30), ObstacleKind::Module);
        m.add(Segment::horizontal(15, 18, 25), ObstacleKind::Module);
        let got = route_two_points(&m, b, Point::new(2, 2), Point::new(20, 22));
        // The oracle: line expansion still finds it.
        let mut s = crate::expand::Search::new(&m, netart_netlist::NetId::from_index(0), false, 64);
        s.seed(crate::expand::Front::A, Point::new(2, 2), netart_geom::Dir::Right);
        s.seed(crate::expand::Front::B, Point::new(20, 22), netart_geom::Dir::Up);
        let oracle = s.run(&mut crate::budget::BudgetMeter::unlimited());
        assert!(
            matches!(oracle, crate::expand::SearchResult::Connected(_)),
            "the maze is solvable"
        );
        // Hightower may or may not solve it; record the expected
        // incompleteness on at least this instance.
        if let Some(p) = &got {
            assert!(p.connects(&[Point::new(2, 2), Point::new(20, 22)]));
        }
    }

    #[test]
    fn maximal_line_respects_walls() {
        let (mut m, b) = plane(20, 10);
        m.add(Segment::vertical(12, 0, 10), ObstacleKind::Module);
        let l = maximal_line(&m, b, Point::new(5, 5), Axis::Horizontal);
        assert_eq!(l, Segment::horizontal(5, 1, 11));
        let v = maximal_line(&m, b, Point::new(5, 5), Axis::Vertical);
        assert_eq!(v, Segment::vertical(5, 1, 9));
    }
}
