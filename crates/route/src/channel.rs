//! The left-edge channel router (§5.2.4).
//!
//! A channel router solves a restricted problem: pins on the top and
//! bottom edge of an obstacle-free channel, one horizontal trunk track
//! per net, vertical branches to the pins. The classic *left-edge*
//! algorithm sorts the net trunks by their left end and packs each
//! track greedily as dense as possible.
//!
//! The paper rejects this class for the diagram generator because it
//! needs predefined channels (§5.4) — but it is the fastest of the
//! three baselines where it applies, and the benchmark suite uses it
//! to show that trade-off.
//!
//! As in the paper's sketch, vertical constraint loops are not
//! handled: two pins of different nets sharing a column are accepted
//! and may produce touching verticals (flagged by the caller's checks).
//!
//! # Examples
//!
//! ```
//! use netart_route::channel::{assign_tracks, Trunk};
//!
//! let trunks = vec![
//!     Trunk::new(0, 0, 4),
//!     Trunk::new(1, 2, 8),  // overlaps net 0: next track
//!     Trunk::new(2, 5, 9),  // fits after net 0 on track 0
//! ];
//! let tracks = assign_tracks(&trunks);
//! assert_eq!(tracks, vec![0, 1, 0]);
//! ```

use netart_geom::Segment;

use netart_diagram::NetPath;

/// The horizontal extent a net must span inside the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trunk {
    /// Caller's net identifier (opaque to the router).
    pub net: usize,
    /// Leftmost column the net touches.
    pub left: i32,
    /// Rightmost column the net touches.
    pub right: i32,
}

impl Trunk {
    /// A trunk for `net` spanning `[left, right]`.
    ///
    /// # Panics
    ///
    /// Panics when `left > right`.
    pub fn new(net: usize, left: i32, right: i32) -> Self {
        assert!(left <= right, "trunk bounds out of order");
        Trunk { net, left, right }
    }
}

/// Left-edge track assignment: returns one track index per trunk,
/// index-aligned with the input. Track 0 is filled first.
pub fn assign_tracks(trunks: &[Trunk]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..trunks.len()).collect();
    order.sort_by_key(|&i| (trunks[i].left, trunks[i].right, i));
    let mut assignment = vec![usize::MAX; trunks.len()];
    let mut track_right: Vec<i32> = Vec::new(); // rightmost occupied column per track
    for i in order {
        let t = trunks[i];
        // First track whose last trunk ends strictly left of ours
        // (trunks on one track may not touch: they belong to
        // different nets).
        let slot = track_right.iter().position(|&r| r < t.left);
        match slot {
            Some(s) => {
                assignment[i] = s;
                track_right[s] = t.right;
            }
            None => {
                assignment[i] = track_right.len();
                track_right.push(t.right);
            }
        }
    }
    assignment
}

/// Number of tracks the assignment uses.
pub fn track_count(assignment: &[usize]) -> usize {
    assignment.iter().map(|&t| t + 1).max().unwrap_or(0)
}

/// The classic lower bound: the channel density (maximum number of
/// trunks crossing any column).
pub fn density(trunks: &[Trunk]) -> usize {
    let mut events: Vec<(i32, i32)> = Vec::new();
    for t in trunks {
        events.push((t.left, 1));
        events.push((t.right + 1, -1));
    }
    events.sort_unstable();
    let mut cur = 0;
    let mut max = 0;
    for (_, d) in events {
        cur += d;
        max = max.max(cur);
    }
    max as usize
}

/// One pin on a channel edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPin {
    /// Column of the pin.
    pub column: i32,
    /// Caller's net identifier.
    pub net: usize,
    /// `true` for the top edge, `false` for the bottom.
    pub top: bool,
}

/// Routes a full channel: assigns a trunk track per net and emits the
/// wire geometry. The channel occupies rows `0` (bottom pins) to
/// `height` (top pins); trunks run on rows `1..`, one per track.
///
/// Returns `(paths, track_count)` with one path per distinct net in
/// first-appearance order; nets whose trunks would not fit below the
/// top edge still route (the channel "overflows", as the paper notes —
/// the caller can compare `track_count` against `height - 1`).
pub fn route_channel(pins: &[ChannelPin], height: i32) -> (Vec<(usize, NetPath)>, usize) {
    let mut nets: Vec<usize> = Vec::new();
    for p in pins {
        if !nets.contains(&p.net) {
            nets.push(p.net);
        }
    }
    let trunks: Vec<Trunk> = nets
        .iter()
        .map(|&n| {
            let cols: Vec<i32> = pins.iter().filter(|p| p.net == n).map(|p| p.column).collect();
            Trunk::new(
                n,
                cols.iter().copied().min().expect("net has pins"),
                cols.iter().copied().max().expect("net has pins"),
            )
        })
        .collect();
    let assignment = assign_tracks(&trunks);
    let tracks = track_count(&assignment);

    let paths = trunks
        .iter()
        .zip(&assignment)
        .map(|(t, &track)| {
            let y = 1 + track as i32;
            let mut segs = Vec::new();
            if t.left != t.right {
                segs.push(Segment::horizontal(y, t.left, t.right));
            }
            for p in pins.iter().filter(|p| p.net == t.net) {
                let py = if p.top { height } else { 0 };
                if py != y {
                    segs.push(Segment::vertical(p.column, py.min(y), py.max(y)));
                }
            }
            (t.net, NetPath::from_segments(segs))
        })
        .collect();
    (paths, tracks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_trunks_share_a_track() {
        let trunks = vec![Trunk::new(0, 0, 3), Trunk::new(1, 5, 9)];
        assert_eq!(assign_tracks(&trunks), vec![0, 0]);
    }

    #[test]
    fn touching_trunks_get_distinct_tracks() {
        // Sharing column 3 would join two nets: not allowed.
        let trunks = vec![Trunk::new(0, 0, 3), Trunk::new(1, 3, 9)];
        let a = assign_tracks(&trunks);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn track_count_matches_density_on_interval_graphs() {
        // Left-edge is optimal without vertical constraints: track
        // count equals channel density.
        let trunks = vec![
            Trunk::new(0, 0, 4),
            Trunk::new(1, 2, 8),
            Trunk::new(2, 5, 9),
            Trunk::new(3, 10, 12),
            Trunk::new(4, 1, 11),
        ];
        let a = assign_tracks(&trunks);
        assert_eq!(track_count(&a), density(&trunks));
    }

    #[test]
    fn density_counts_overlaps() {
        let trunks = vec![
            Trunk::new(0, 0, 10),
            Trunk::new(1, 2, 5),
            Trunk::new(2, 4, 8),
        ];
        assert_eq!(density(&trunks), 3);
    }

    #[test]
    fn full_channel_routing_connects_pins() {
        let pins = vec![
            ChannelPin { column: 1, net: 0, top: false },
            ChannelPin { column: 6, net: 0, top: true },
            ChannelPin { column: 3, net: 1, top: false },
            ChannelPin { column: 9, net: 1, top: true },
        ];
        let (paths, tracks) = route_channel(&pins, 6);
        assert_eq!(paths.len(), 2);
        assert!(tracks >= 1);
        for (net, path) in &paths {
            let pts: Vec<netart_geom::Point> = pins
                .iter()
                .filter(|p| p.net == *net)
                .map(|p| netart_geom::Point::new(p.column, if p.top { 6 } else { 0 }))
                .collect();
            assert!(path.connects(&pts), "net {net}: {:?}", path.segments());
        }
    }

    #[test]
    fn single_pin_column_net() {
        // Net with both pins in one column: a straight vertical, no trunk.
        let pins = vec![
            ChannelPin { column: 4, net: 0, top: false },
            ChannelPin { column: 4, net: 0, top: true },
        ];
        let (paths, _) = route_channel(&pins, 5);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].1.connects(&[
            netart_geom::Point::new(4, 0),
            netart_geom::Point::new(4, 5)
        ]));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn bad_trunk_panics() {
        let _ = Trunk::new(0, 5, 2);
    }
}
