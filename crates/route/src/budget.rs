//! Per-net search budgets.
//!
//! The paper's router explores until the plane is exhausted, which is
//! fine for the diagrams of §6 but unbounded on pathological input. A
//! [`Budget`] caps one net's search by wall-clock deadline and/or
//! expanded-node count; a [`BudgetMeter`] does the counting. The
//! default budget is unlimited, so bounded routing is strictly opt-in
//! and unbudgeted runs behave exactly as before.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a supervisor (a
/// watchdog thread, a batch engine draining on SIGTERM) and the
/// routing hot path.
///
/// Cloning is cheap — clones observe the same flag. The flag is
/// checked by [`BudgetMeter::charge`] on the same
/// [`TIME_POLL_STRIDE`] cadence as the wall-clock deadline, so a
/// cancelled search stops within one stride of charges instead of
/// running to exhaustion; once set it cannot be unset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Irrevocable; safe to call from any
    /// thread and from signal-adjacent contexts (a single atomic
    /// store).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Tokens compare by identity: two tokens are equal when they share
/// the same underlying flag (what config equality actually means).
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// Bounds on the search effort spent on a single net.
///
/// Both limits are optional and independent; [`Budget::UNLIMITED`]
/// (the default) disables both. The node cap counts expanded active
/// segments in line expansion and popped cells in the Lee fallback —
/// the unit of work both routers share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance for one net, `None` for no deadline.
    pub time: Option<Duration>,
    /// Search-node allowance for one net, `None` for no cap.
    pub nodes: Option<u64>,
}

impl Budget {
    /// No limits: the search runs to exhaustion.
    pub const UNLIMITED: Budget = Budget {
        time: None,
        nodes: None,
    };

    /// An unlimited budget (same as [`Budget::UNLIMITED`]).
    pub fn new() -> Self {
        Budget::UNLIMITED
    }

    /// Caps wall-clock time per net.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time = Some(limit);
        self
    }

    /// Caps expanded search nodes per net.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.nodes = Some(limit);
        self
    }

    /// Clamps the wall-clock limit to at most `ceiling`: an unlimited
    /// budget becomes `ceiling`, a larger limit shrinks to it, a
    /// smaller one is untouched. This is how a server-side deadline
    /// ceiling caps whatever a request asked for without ever
    /// *extending* a stricter per-net budget.
    pub fn with_time_ceiling(mut self, ceiling: Duration) -> Self {
        self.time = Some(self.time.map_or(ceiling, |t| t.min(ceiling)));
        self
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time.is_none() && self.nodes.is_none()
    }

    /// The same budget with both limits multiplied by `factor` — the
    /// escalation step of the salvage cascade.
    pub fn scaled(&self, factor: u32) -> Budget {
        Budget {
            time: self.time.map(|t| t * factor),
            nodes: self.nodes.map(|n| n.saturating_mul(u64::from(factor))),
        }
    }
}

/// Which limit a search ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The wall-clock deadline passed.
    Time,
    /// The node cap was reached.
    Nodes,
    /// The attached [`CancelToken`] was cancelled.
    Cancelled,
}

/// Running consumption against one [`Budget`].
///
/// A meter is started per net and shared across that net's searches,
/// so a many-terminal net cannot multiply its allowance. Charging is
/// close to free for unlimited budgets, and the deadline is polled
/// only every [`TIME_POLL_STRIDE`] charges to keep `Instant::now`
/// off the hot path.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    nodes_left: Option<u64>,
    charges: u64,
    since_poll: u64,
    cancel: Option<CancelToken>,
    breach: Option<BudgetBreach>,
}

/// How many charge units pass between deadline/cancellation polls.
pub const TIME_POLL_STRIDE: u64 = 64;

impl BudgetMeter {
    /// Starts metering `budget` from now.
    pub fn start(budget: Budget) -> Self {
        BudgetMeter {
            deadline: budget.time.map(|t| Instant::now() + t),
            nodes_left: budget.nodes,
            charges: 0,
            since_poll: 0,
            cancel: None,
            breach: None,
        }
    }

    /// A meter that never trips.
    pub fn unlimited() -> Self {
        BudgetMeter::start(Budget::UNLIMITED)
    }

    /// Attaches a cancellation token, checked on the same
    /// [`TIME_POLL_STRIDE`] cadence as the deadline.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Records one unit of search work; returns the breach, if any.
    /// Once tripped, a meter stays tripped.
    pub fn charge(&mut self) -> Option<BudgetBreach> {
        self.charge_many(1)
    }

    /// Records `units` of search work in one call (a Lee wave, a long
    /// swept segment). Polling is by *accumulated* units, not by
    /// charge-call count: as soon as ≥ [`TIME_POLL_STRIDE`] units have
    /// piled up since the last poll — even within a single large
    /// charge — the deadline and cancellation token are checked.
    pub fn charge_many(&mut self, units: u64) -> Option<BudgetBreach> {
        if self.breach.is_some() {
            return self.breach;
        }
        if let Some(left) = &mut self.nodes_left {
            if *left < units {
                self.breach = Some(BudgetBreach::Nodes);
                return self.breach;
            }
            *left -= units;
        }
        self.charges = self.charges.saturating_add(units);
        self.since_poll = self.since_poll.saturating_add(units);
        if self.since_poll >= TIME_POLL_STRIDE {
            self.since_poll = 0;
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.breach = Some(BudgetBreach::Cancelled);
            } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
                self.breach = Some(BudgetBreach::Time);
            }
        }
        self.breach
    }

    /// The breach recorded so far, if any.
    pub fn breach(&self) -> Option<BudgetBreach> {
        self.breach
    }

    /// Total units charged.
    pub fn spent(&self) -> u64 {
        self.charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::unlimited();
        for _ in 0..100_000 {
            assert_eq!(m.charge(), None);
        }
        assert_eq!(m.spent(), 100_000);
    }

    #[test]
    fn node_cap_trips_exactly() {
        let mut m = BudgetMeter::start(Budget::new().with_node_limit(10));
        for _ in 0..10 {
            assert_eq!(m.charge(), None);
        }
        assert_eq!(m.charge(), Some(BudgetBreach::Nodes));
        // Sticky.
        assert_eq!(m.charge(), Some(BudgetBreach::Nodes));
        assert_eq!(m.breach(), Some(BudgetBreach::Nodes));
    }

    #[test]
    fn deadline_trips() {
        let mut m = BudgetMeter::start(Budget::new().with_time_limit(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..10 * TIME_POLL_STRIDE {
            if m.charge() == Some(BudgetBreach::Time) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "zero deadline must trip within one poll stride");
    }

    #[test]
    fn one_large_charge_polls_the_deadline() {
        // Regression: polling used to look only at multiples of the
        // stride, so a single charge of ≥ TIME_POLL_STRIDE units could
        // jump over every poll point and never notice the deadline.
        let mut m = BudgetMeter::start(Budget::new().with_time_limit(Duration::ZERO));
        assert_eq!(
            m.charge_many(1000),
            Some(BudgetBreach::Time),
            "a 1000-unit charge must poll a zero deadline"
        );
        assert_eq!(m.breach(), Some(BudgetBreach::Time));
    }

    #[test]
    fn accumulated_small_charges_poll_between_strides() {
        let mut m = BudgetMeter::start(Budget::new().with_time_limit(Duration::ZERO));
        // 63 units, then 3 more: the poll must fire at 66 accumulated
        // units even though neither call count nor total is a stride
        // multiple.
        assert_eq!(m.charge_many(TIME_POLL_STRIDE - 1), None);
        let breach = m.charge_many(3);
        assert_eq!(breach, Some(BudgetBreach::Time));
    }

    #[test]
    fn cancellation_trips_within_one_stride() {
        let token = CancelToken::new();
        let mut m = BudgetMeter::unlimited().with_cancel(token.clone());
        for _ in 0..10 * TIME_POLL_STRIDE {
            assert_eq!(m.charge(), None, "uncancelled token never trips");
        }
        token.cancel();
        let mut tripped = 0u64;
        while m.charge() != Some(BudgetBreach::Cancelled) {
            tripped += 1;
            assert!(tripped <= TIME_POLL_STRIDE, "must trip within one stride");
        }
        // Sticky, like every other breach.
        assert_eq!(m.charge(), Some(BudgetBreach::Cancelled));
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b, "clones compare equal (same flag)");
        assert_ne!(a, CancelToken::new(), "fresh tokens are distinct");
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn node_cap_breaches_on_oversized_charge() {
        let mut m = BudgetMeter::start(Budget::new().with_node_limit(10));
        assert_eq!(m.charge_many(10), None, "exact drain is within budget");
        assert_eq!(m.charge_many(1), Some(BudgetBreach::Nodes));
        let mut m = BudgetMeter::start(Budget::new().with_node_limit(10));
        assert_eq!(m.charge_many(11), Some(BudgetBreach::Nodes));
    }

    #[test]
    fn scaling_multiplies_limits() {
        let b = Budget::new()
            .with_time_limit(Duration::from_millis(50))
            .with_node_limit(1000)
            .scaled(4);
        assert_eq!(b.time, Some(Duration::from_millis(200)));
        assert_eq!(b.nodes, Some(4000));
        assert!(Budget::UNLIMITED.scaled(4).is_unlimited());
    }

    #[test]
    fn time_ceiling_caps_without_extending() {
        let unlimited = Budget::new().with_time_ceiling(Duration::from_millis(100));
        assert_eq!(unlimited.time, Some(Duration::from_millis(100)));
        let looser = Budget::new()
            .with_time_limit(Duration::from_secs(5))
            .with_time_ceiling(Duration::from_millis(100));
        assert_eq!(looser.time, Some(Duration::from_millis(100)));
        let stricter = Budget::new()
            .with_time_limit(Duration::from_millis(10))
            .with_time_ceiling(Duration::from_millis(100));
        assert_eq!(
            stricter.time,
            Some(Duration::from_millis(10)),
            "a ceiling never loosens an existing limit"
        );
        let node_only = Budget::new()
            .with_node_limit(7)
            .with_time_ceiling(Duration::from_millis(100));
        assert_eq!(node_only.nodes, Some(7), "node cap untouched");
    }

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert_eq!(Budget::default(), Budget::UNLIMITED);
    }
}
