//! Per-net search budgets.
//!
//! The paper's router explores until the plane is exhausted, which is
//! fine for the diagrams of §6 but unbounded on pathological input. A
//! [`Budget`] caps one net's search by wall-clock deadline and/or
//! expanded-node count; a [`BudgetMeter`] does the counting. The
//! default budget is unlimited, so bounded routing is strictly opt-in
//! and unbudgeted runs behave exactly as before.

use std::time::{Duration, Instant};

/// Bounds on the search effort spent on a single net.
///
/// Both limits are optional and independent; [`Budget::UNLIMITED`]
/// (the default) disables both. The node cap counts expanded active
/// segments in line expansion and popped cells in the Lee fallback —
/// the unit of work both routers share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock allowance for one net, `None` for no deadline.
    pub time: Option<Duration>,
    /// Search-node allowance for one net, `None` for no cap.
    pub nodes: Option<u64>,
}

impl Budget {
    /// No limits: the search runs to exhaustion.
    pub const UNLIMITED: Budget = Budget {
        time: None,
        nodes: None,
    };

    /// An unlimited budget (same as [`Budget::UNLIMITED`]).
    pub fn new() -> Self {
        Budget::UNLIMITED
    }

    /// Caps wall-clock time per net.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time = Some(limit);
        self
    }

    /// Caps expanded search nodes per net.
    pub fn with_node_limit(mut self, limit: u64) -> Self {
        self.nodes = Some(limit);
        self
    }

    /// Whether neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time.is_none() && self.nodes.is_none()
    }

    /// The same budget with both limits multiplied by `factor` — the
    /// escalation step of the salvage cascade.
    pub fn scaled(&self, factor: u32) -> Budget {
        Budget {
            time: self.time.map(|t| t * factor),
            nodes: self.nodes.map(|n| n.saturating_mul(u64::from(factor))),
        }
    }
}

/// Which limit a search ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The wall-clock deadline passed.
    Time,
    /// The node cap was reached.
    Nodes,
}

/// Running consumption against one [`Budget`].
///
/// A meter is started per net and shared across that net's searches,
/// so a many-terminal net cannot multiply its allowance. Charging is
/// close to free for unlimited budgets, and the deadline is polled
/// only every [`TIME_POLL_STRIDE`] charges to keep `Instant::now`
/// off the hot path.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    deadline: Option<Instant>,
    nodes_left: Option<u64>,
    charges: u64,
    breach: Option<BudgetBreach>,
}

/// How many charges pass between deadline polls.
const TIME_POLL_STRIDE: u64 = 64;

impl BudgetMeter {
    /// Starts metering `budget` from now.
    pub fn start(budget: Budget) -> Self {
        BudgetMeter {
            deadline: budget.time.map(|t| Instant::now() + t),
            nodes_left: budget.nodes,
            charges: 0,
            breach: None,
        }
    }

    /// A meter that never trips.
    pub fn unlimited() -> Self {
        BudgetMeter::start(Budget::UNLIMITED)
    }

    /// Records one unit of search work; returns the breach, if any.
    /// Once tripped, a meter stays tripped.
    pub fn charge(&mut self) -> Option<BudgetBreach> {
        if self.breach.is_some() {
            return self.breach;
        }
        if let Some(left) = &mut self.nodes_left {
            if *left == 0 {
                self.breach = Some(BudgetBreach::Nodes);
                return self.breach;
            }
            *left -= 1;
        }
        self.charges += 1;
        if let Some(deadline) = self.deadline {
            if self.charges.is_multiple_of(TIME_POLL_STRIDE) && Instant::now() >= deadline {
                self.breach = Some(BudgetBreach::Time);
            }
        }
        self.breach
    }

    /// The breach recorded so far, if any.
    pub fn breach(&self) -> Option<BudgetBreach> {
        self.breach
    }

    /// Total units charged.
    pub fn spent(&self) -> u64 {
        self.charges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = BudgetMeter::unlimited();
        for _ in 0..100_000 {
            assert_eq!(m.charge(), None);
        }
        assert_eq!(m.spent(), 100_000);
    }

    #[test]
    fn node_cap_trips_exactly() {
        let mut m = BudgetMeter::start(Budget::new().with_node_limit(10));
        for _ in 0..10 {
            assert_eq!(m.charge(), None);
        }
        assert_eq!(m.charge(), Some(BudgetBreach::Nodes));
        // Sticky.
        assert_eq!(m.charge(), Some(BudgetBreach::Nodes));
        assert_eq!(m.breach(), Some(BudgetBreach::Nodes));
    }

    #[test]
    fn deadline_trips() {
        let mut m = BudgetMeter::start(Budget::new().with_time_limit(Duration::ZERO));
        let mut tripped = false;
        for _ in 0..10 * TIME_POLL_STRIDE {
            if m.charge() == Some(BudgetBreach::Time) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "zero deadline must trip within one poll stride");
    }

    #[test]
    fn scaling_multiplies_limits() {
        let b = Budget::new()
            .with_time_limit(Duration::from_millis(50))
            .with_node_limit(1000)
            .scaled(4);
        assert_eq!(b.time, Some(Duration::from_millis(200)));
        assert_eq!(b.nodes, Some(4000));
        assert!(Budget::UNLIMITED.scaled(4).is_unlimited());
    }

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert_eq!(Budget::default(), Budget::UNLIMITED);
    }
}
