//! The EUREKA routing facade (§5.6.3 `ROUTING`, Appendix F).

use std::collections::BTreeMap;

use netart_geom::{Axis, Dir, Point, Rect, Segment};
use netart_netlist::{NetId, Network, Pin};
use tracing::{debug, span, warn, Level};

use netart_diagram::{Diagram, GhostWire, NetPath};
use netart_fault::FaultKind;

use crate::budget::BudgetMeter;
use crate::expand::{merge_collinear, split_at_junctions, Front, Search, SearchResult};
use crate::{lee, NetOrder, ObstacleKind, ObstacleMap, RouteConfig};

/// Budget multiplier for the salvage cascade's escalated retry.
const ESCALATION_FACTOR: u32 = 4;

/// How many routed nets a rip-up pass may sacrifice for one failure.
const MAX_VICTIMS: usize = 3;

/// The cascade step that finally handled a failed net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageStep {
    /// Ripping up intersecting lower-priority routes and retrying with
    /// an escalated budget routed it (the victims were rerouted too).
    RipUpRetry,
    /// The Lee maze router connected it — minimum length, no regard
    /// for the bend aesthetics of §3.2.
    LeeFallback,
    /// Unroutable within every fallback: emitted as an explicit ghost
    /// wire so the output still shows the connection.
    GhostWire,
}

/// Record of one net that went through the salvage cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SalvageRecord {
    /// The net that the main passes could not route.
    pub net: NetId,
    /// The step that finally handled it.
    pub step: SalvageStep,
    /// `true` when the original failure was a budget breach rather
    /// than an exhausted search.
    pub over_budget: bool,
    /// Search nodes the cascade itself expanded for this net (escalated
    /// retries, victim reroutes and the Lee fallback combined).
    pub nodes_spent: u64,
    /// Routed nets ripped up while trying to make room.
    pub ripup_victims: u32,
}

impl SalvageStep {
    /// Stable lowercase name, used in reports and events.
    pub fn as_str(&self) -> &'static str {
        match self {
            SalvageStep::RipUpRetry => "rip_up_retry",
            SalvageStep::LeeFallback => "lee_fallback",
            SalvageStep::GhostWire => "ghost_wire",
        }
    }
}

/// Per-net routing effort, one entry per net the router attempted, in
/// net-id order. The raw material for the `nets` array of a run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRouteStats {
    /// The net.
    pub net: NetId,
    /// Whether the net ended up fully connected.
    pub routed: bool,
    /// `true` when a complete preroute made routing unnecessary.
    pub prerouted: bool,
    /// Search nodes expanded for this net across every pass it needed.
    pub nodes_expanded: u64,
    /// Whether any pass ended on a budget breach.
    pub over_budget: bool,
    /// Whether the claim-lift retry pass had to run for this net.
    pub retried: bool,
    /// The salvage step that handled it, when the cascade ran.
    pub salvage: Option<SalvageStep>,
    /// Routed nets ripped up on this net's behalf.
    pub ripup_victims: u32,
    /// Bounding box `(min_x, min_y, max_x, max_y)` of everything the
    /// net's searches activated across the first and retry passes —
    /// the spatial footprint of the effort, for the `netart profile`
    /// heat map. `None` for prerouted nets and nets the cascade alone
    /// touched. Deterministic for a given input; not serialized into
    /// run reports.
    pub search_bbox: Option<(i32, i32, i32, i32)>,
}

impl NetRouteStats {
    fn attempt(net: NetId) -> NetRouteStats {
        NetRouteStats {
            net,
            routed: false,
            prerouted: false,
            nodes_expanded: 0,
            over_budget: false,
            retried: false,
            salvage: None,
            ripup_victims: 0,
            search_bbox: None,
        }
    }
}

/// One budgeted attempt's outcome: `(routed, nodes expanded, over
/// budget, explored bbox)`.
type AttemptResult = (bool, u64, bool, Option<(i32, i32, i32, i32)>);

/// Union of two optional bounding boxes (`(min_x, min_y, max_x,
/// max_y)` each).
fn union_bbox(
    a: Option<(i32, i32, i32, i32)>,
    b: Option<(i32, i32, i32, i32)>,
) -> Option<(i32, i32, i32, i32)> {
    match (a, b) {
        (Some((ax0, ay0, ax1, ay1)), Some((bx0, by0, bx1, by1))) => {
            Some((ax0.min(bx0), ay0.min(by0), ax1.max(bx1), ay1.max(by1)))
        }
        (a, None) => a,
        (None, b) => b,
    }
}

/// Outcome of a routing run.
#[derive(Debug, Clone, Default)]
pub struct RouteReport {
    /// Nets routed successfully (including those fixed by the retry
    /// pass or the salvage cascade).
    pub routed: Vec<NetId>,
    /// Nets the router could not complete; their routes stay empty and
    /// a designer (or another pass) may intervene, as in the paper's
    /// example 3. With salvage enabled these nets carry a ghost wire.
    pub failed: Vec<NetId>,
    /// Nets that needed the salvage cascade, in the order they were
    /// salvaged, and how each one ended.
    pub salvaged: Vec<SalvageRecord>,
    /// Per-net effort counters, in net-id order.
    pub net_stats: Vec<NetRouteStats>,
}

impl RouteReport {
    /// Fraction of attempted nets that were routed; `1.0` when nothing
    /// was attempted.
    pub fn completion(&self) -> f64 {
        let total = self.routed.len() + self.failed.len();
        if total == 0 {
            1.0
        } else {
            self.routed.len() as f64 / total as f64
        }
    }
}

/// The routing phase of the generator: the `eureka` program of
/// Appendix F.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct Eureka {
    config: RouteConfig,
}

impl Eureka {
    /// A router with the given options.
    pub fn new(config: RouteConfig) -> Self {
        Eureka { config }
    }

    /// The options in use.
    pub fn config(&self) -> &RouteConfig {
        &self.config
    }

    /// Starts a meter for `budget`, attaching the run's cancellation
    /// token (if any) so every per-net search honours it.
    fn meter(&self, budget: crate::Budget) -> BudgetMeter {
        let meter = BudgetMeter::start(budget);
        match &self.config.cancel {
            Some(token) => meter.with_cancel(token.clone()),
            None => meter,
        }
    }

    /// Whether the run's cancellation token has been tripped.
    fn cancelled(&self) -> bool {
        self.config
            .cancel
            .as_ref()
            .is_some_and(crate::CancelToken::is_cancelled)
    }

    /// Routes every unrouted net of the diagram. Prerouted nets are
    /// respected as obstacles and extended where incomplete; the
    /// placement is never changed. Cyclic prerouted nets violate the
    /// Appendix F input contract and are dropped and rerouted from
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics when the placement is incomplete (run the placer first).
    pub fn route(&self, diagram: &mut Diagram) -> RouteReport {
        let network = diagram.network().clone();
        assert!(
            diagram.placement().is_complete(),
            "routing requires a complete placement"
        );

        // Appendix F: "the nets may not contain a cycle".
        for n in network.nets() {
            if diagram.route(n).is_some_and(NetPath::has_cycle) {
                diagram.clear_route(n);
            }
        }

        let mut map = self.build_map(diagram, &network);

        // Net selection order: definition order by default, §7's
        // smarter criteria on request.
        let mut todo: Vec<NetId> = network.nets().collect();
        match self.config.order {
            NetOrder::Definition => {}
            NetOrder::MostPinsFirst => {
                todo.sort_by_key(|&n| (usize::MAX - network.net(n).pins().len(), n));
            }
            NetOrder::FewestPinsFirst => {
                todo.sort_by_key(|&n| (network.net(n).pins().len(), n));
            }
        }
        let mut report = RouteReport::default();
        let mut stats: BTreeMap<NetId, NetRouteStats> = BTreeMap::new();
        let mut failed_first_pass = Vec::new();
        // Fault injection (inert unless the `fault-injection` feature
        // is on): the `route.net` site counts net visits; once armed
        // it poisons exactly one net, and the poison persists through
        // the retry pass so the fault must surface via the salvage
        // cascade rather than vanish in a silent retry.
        let mut injected: Option<(NetId, FaultKind)> = None;
        for n in todo {
            if let Some(kind) = netart_fault::fire(netart_fault::sites::ROUTE_NET) {
                injected.get_or_insert((n, kind));
            }
            let entry = stats.entry(n).or_insert_with(|| NetRouteStats::attempt(n));
            let prerouted_complete = diagram.route(n).is_some_and(|p| {
                let pins: Vec<Point> = network
                    .net(n)
                    .pins()
                    .iter()
                    .map(|&pin| diagram.placement().pin_position(&network, pin))
                    .collect();
                p.connects(&pins)
            });
            if prerouted_complete {
                entry.routed = true;
                entry.prerouted = true;
                report.routed.push(n);
                continue;
            }
            if self.cancelled() {
                // Drain: remaining nets are recorded as failed without
                // spending any more search effort.
                failed_first_pass.push((n, false));
                continue;
            }
            let net_span = span!(Level::DEBUG, "eureka.net", net = network.net(n).name());
            let _guard = net_span.enter();
            let sabotage = injected.and_then(|(victim, kind)| (victim == n).then_some(kind));
            let (routed, nodes, over_budget, explored) =
                self.attempt_net(diagram, &network, &mut map, n, sabotage);
            entry.nodes_expanded += nodes;
            entry.over_budget |= over_budget;
            entry.routed = routed;
            entry.search_bbox = union_bbox(entry.search_bbox, explored);
            debug!(
                "first pass",
                net = network.net(n).name(),
                routed = routed,
                nodes = nodes,
                over_budget = over_budget,
            );
            if routed {
                report.routed.push(n);
            } else {
                failed_first_pass.push((n, over_budget));
            }
        }

        // §5.7: lift every remaining claimpoint and retry the failures.
        if self.config.retry_failed && !failed_first_pass.is_empty() {
            map.remove_all_claims();
        }
        let mut failures: Vec<(NetId, bool)> = Vec::new();
        for (n, over_budget) in failed_first_pass {
            let net_span = span!(Level::DEBUG, "eureka.retry", net = network.net(n).name());
            let _guard = net_span.enter();
            let sabotage = injected.and_then(|(victim, kind)| (victim == n).then_some(kind));
            let (routed, nodes, over, explored) = if self.config.retry_failed && !self.cancelled() {
                self.attempt_net(diagram, &network, &mut map, n, sabotage)
            } else {
                (false, 0, false, None)
            };
            let entry = stats.entry(n).or_insert_with(|| NetRouteStats::attempt(n));
            entry.nodes_expanded += nodes;
            entry.over_budget |= over;
            entry.retried = self.config.retry_failed;
            entry.routed = routed;
            entry.search_bbox = union_bbox(entry.search_bbox, explored);
            if routed {
                report.routed.push(n);
            } else {
                failures.push((n, over_budget || over));
            }
        }

        // The salvage cascade: rip-up + escalated retry, then the Lee
        // fallback, then a ghost wire. Claims are irrelevant this deep.
        if self.config.salvage && !failures.is_empty() && !self.cancelled() {
            map.remove_all_claims();
            let pending = std::mem::take(&mut failures);
            for (n, over_budget) in pending {
                if self.cancelled() {
                    // Cancelled mid-cascade: report the rest as plain
                    // failures, unsalvaged.
                    failures.push((n, over_budget));
                    continue;
                }
                let net_span = span!(Level::DEBUG, "eureka.salvage", net = network.net(n).name());
                let _guard = net_span.enter();
                let (step, nodes_spent, ripup_victims) =
                    self.salvage_net(diagram, &network, &mut map, n, over_budget);
                warn!(
                    "net salvaged",
                    net = network.net(n).name(),
                    step = step.as_str(),
                    over_budget = over_budget,
                    nodes = nodes_spent,
                    victims = ripup_victims,
                );
                report.salvaged.push(SalvageRecord {
                    net: n,
                    step,
                    over_budget,
                    nodes_spent,
                    ripup_victims,
                });
                let entry = stats.entry(n).or_insert_with(|| NetRouteStats::attempt(n));
                entry.nodes_expanded += nodes_spent;
                entry.salvage = Some(step);
                entry.ripup_victims = ripup_victims;
                match step {
                    SalvageStep::RipUpRetry | SalvageStep::LeeFallback => {
                        entry.routed = true;
                        report.routed.push(n);
                    }
                    SalvageStep::GhostWire => report.failed.push(n),
                }
            }
        }
        report.failed.extend(failures.into_iter().map(|(n, _)| n));
        report.routed.sort_unstable();
        report.failed.sort_unstable();
        report.net_stats = stats.into_values().collect();
        debug!(
            "routing done",
            routed = report.routed.len() as u64,
            failed = report.failed.len() as u64,
            salvaged = report.salvaged.len() as u64,
        );
        report
    }

    /// The routing-plane border rect (the paper's ±inf border, made
    /// finite by the configured margins).
    fn border_rect(&self, diagram: &Diagram, network: &Network) -> Rect {
        let bb = diagram
            .placement()
            .bounding_box(network)
            .unwrap_or_else(|| Rect::new(Point::ORIGIN, 4, 4));
        let [ml, mr, md, mu] = self.config.margins;
        Rect::from_corners(
            bb.lower_left() - Point::new(ml.max(1), md.max(1)),
            bb.upper_right() + Point::new(mr.max(1), mu.max(1)),
        )
    }

    /// Builds the obstacle configuration (`ADD_OBSTACLE_BOUNDINGS` plus
    /// claims and prerouted nets).
    fn build_map(&self, diagram: &Diagram, network: &Network) -> ObstacleMap {
        let placement = diagram.placement();
        let mut map = ObstacleMap::new();

        let border = self.border_rect(diagram, network);
        map.add_rect(&border, ObstacleKind::Module);

        for m in network.modules() {
            map.add_rect(&placement.module_rect(network, m), ObstacleKind::Module);
        }
        for st in network.system_terms() {
            let p = placement.system_term(st).expect("complete placement");
            map.add_point(p, ObstacleKind::Module);
        }
        for (n, path) in diagram.routes() {
            // Split at bends and junctions so every turn of the net
            // blocks other sweeps (same invariant route_net maintains).
            for seg in split_at_junctions(path.segments()) {
                map.add(seg, ObstacleKind::Net(n));
            }
        }
        if self.config.claimpoints {
            for n in network.nets() {
                if diagram.route(n).is_some() {
                    continue;
                }
                for &pin in network.net(n).pins() {
                    if let Pin::Sub { module, term } = pin {
                        let pos = placement.terminal_position(network, module, term);
                        let side = placement.terminal_side(network, module, term);
                        let claim = pos.step(side);
                        if border.contains_strictly(claim) {
                            map.add_point(claim, ObstacleKind::Claim(n));
                        }
                    }
                }
            }
        }
        map
    }

    /// Routes one net: initiate a point-to-point connection, then
    /// expand to the remaining terminals one at a time (§5.5.3). All
    /// of the net's searches share `meter`, so the budget bounds the
    /// net as a whole.
    fn route_net(
        &self,
        diagram: &mut Diagram,
        network: &Network,
        map: &mut ObstacleMap,
        net: NetId,
        meter: &mut BudgetMeter,
        explored: &mut Option<(i32, i32, i32, i32)>,
    ) -> bool {
        let placement = diagram.placement();
        let pins: Vec<(Point, Vec<Dir>)> = network
            .net(net)
            .pins()
            .iter()
            .map(|&pin| match pin {
                Pin::Sub { module, term } => (
                    placement.terminal_position(network, module, term),
                    vec![placement.terminal_side(network, module, term)],
                ),
                Pin::System(st) => (
                    placement.system_term(st).expect("complete placement"),
                    Dir::ALL.to_vec(),
                ),
            })
            .collect();

        // Claims of this net are lifted for the search (§5.7) and its
        // system terminal points stop blocking their own net.
        map.remove_claims_of(net);
        let st_points: Vec<Point> = network
            .net(net)
            .pins()
            .iter()
            .filter_map(|&pin| match pin {
                Pin::System(st) => placement.system_term(st),
                Pin::Sub { .. } => None,
            })
            .collect();
        map.retain_not(|_, track, o| {
            o.kind == ObstacleKind::Module
                && o.span.is_point()
                && st_points.iter().any(|p| {
                    (p.y == track && p.x == o.span.lo()) || (p.x == track && p.y == o.span.lo())
                })
        });

        let prerouted: Vec<Segment> = diagram
            .route(net)
            .map(|p| p.segments().to_vec())
            .unwrap_or_default();
        let mut wired: Vec<Segment> = prerouted.clone();
        let mut added: Vec<Segment> = Vec::new();
        let mut connected = vec![false; pins.len()];

        // (Re-)registers the net's wires as obstacles, split at bends
        // and junctions so every turn of the net blocks other sweeps.
        fn refresh(map: &mut ObstacleMap, net: NetId, wired: &[Segment]) {
            map.remove_net(net);
            for seg in split_at_junctions(&merge_collinear(wired.to_vec())) {
                map.add(seg, ObstacleKind::Net(net));
            }
        }

        // Pins already touched by prerouted geometry are done.
        for (i, (p, _)) in pins.iter().enumerate() {
            if wired.iter().any(|s| s.contains(*p)) {
                connected[i] = true;
            }
        }

        let mut ok = true;
        if wired.is_empty() {
            // INIT_NET: closest pair first; when an initiation fails,
            // try another pair (§5.5.3).
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for i in 0..pins.len() {
                for j in (i + 1)..pins.len() {
                    pairs.push((i, j));
                }
            }
            pairs.sort_by_key(|&(i, j)| pins[i].0.manhattan(pins[j].0));
            let mut initiated = false;
            for (i, j) in pairs {
                let mut search =
                    Search::new(map, net, self.config.swap_tiebreak, self.config.max_bends);
                for &d in &pins[i].1 {
                    search.seed(Front::A, pins[i].0, d);
                }
                for &d in &pins[j].1 {
                    search.seed(Front::B, pins[j].0, d);
                }
                let result = search.run(meter);
                *explored = union_bbox(*explored, search.explored_rect());
                if let SearchResult::Connected(conn) = result {
                    for seg in conn.segments {
                        wired.push(seg);
                        added.push(seg);
                    }
                    refresh(map, net, &wired);
                    connected[i] = true;
                    connected[j] = true;
                    initiated = true;
                    break;
                }
            }
            ok = initiated;
        }

        // EXPAND_NET: nearest unconnected pin towards the partial net.
        while ok {
            let next = (0..pins.len())
                .filter(|&i| !connected[i])
                .min_by_key(|&i| dist_to_wires(pins[i].0, &wired));
            let Some(i) = next else { break };
            let mut search = Search::new(map, net, self.config.swap_tiebreak, self.config.max_bends);
            for &d in &pins[i].1 {
                search.seed(Front::A, pins[i].0, d);
            }
            let result = search.run(meter);
            *explored = union_bbox(*explored, search.explored_rect());
            match result {
                SearchResult::Connected(conn) => {
                    for seg in conn.segments {
                        wired.push(seg);
                        added.push(seg);
                    }
                    refresh(map, net, &wired);
                    connected[i] = true;
                    // A new stretch may run over further pins.
                    for (k, (p, _)) in pins.iter().enumerate() {
                        if !connected[k] && wired.iter().any(|s| s.contains(*p)) {
                            connected[k] = true;
                        }
                    }
                }
                SearchResult::Unreachable | SearchResult::OverBudget => ok = false,
            }
        }

        // Restore the system terminal point obstacles.
        for p in &st_points {
            map.add_point(*p, ObstacleKind::Module);
        }

        if ok {
            let mut all = prerouted;
            all.extend(added);
            diagram.set_route(net, NetPath::from_segments(merge_collinear(all)));
            true
        } else {
            // All-or-nothing: a failed net leaves no partial wires (the
            // prerouted part, if any, stays).
            refresh(map, net, &prerouted);
            // Re-claim the terminals so the spots stay protected until
            // the retry pass.
            if self.config.claimpoints {
                for (p, dirs) in &pins {
                    if dirs.len() == 1 {
                        map.add_point(p.step(dirs[0]), ObstacleKind::Claim(net));
                    }
                }
            }
            false
        }
    }

    /// One budgeted attempt at a net, shared by the first and retry
    /// passes. `sabotage` carries the injected fault for this net, if
    /// any: `BudgetExhaust` swaps in a zero-node budget, `Error` skips
    /// the attempt outright, `GarbageOutput` truncates the freshly
    /// routed path so the self-check below has something to catch.
    ///
    /// Every successful attempt is re-verified: the emitted geometry
    /// must actually connect the net's pins, otherwise the route is
    /// torn back out and the attempt reported as failed. This guards
    /// the salvage cascade (and the emitted diagram) against any
    /// router defect that produces disconnected wires.
    ///
    /// Returns `(routed, nodes expanded, over budget, explored bbox)`.
    fn attempt_net(
        &self,
        diagram: &mut Diagram,
        network: &Network,
        map: &mut ObstacleMap,
        net: NetId,
        sabotage: Option<FaultKind>,
    ) -> AttemptResult {
        let budget = if sabotage == Some(FaultKind::BudgetExhaust) {
            crate::Budget::new().with_node_limit(0)
        } else {
            self.config.budget
        };
        let mut meter = self.meter(budget);
        let mut explored = None;
        let mut routed = sabotage != Some(FaultKind::Error)
            && self.route_net(diagram, network, map, net, &mut meter, &mut explored);
        if routed {
            if sabotage == Some(FaultKind::GarbageOutput) {
                if let Some(path) = diagram.clear_route(net) {
                    let mut segments = path.segments().to_vec();
                    segments.pop();
                    diagram.set_route(net, NetPath::from_segments(segments));
                }
            }
            let pins = Self::pin_points(diagram, network, net);
            let connected = diagram.route(net).is_some_and(|p| p.connects(&pins));
            if !connected {
                map.remove_net(net);
                diagram.clear_route(net);
                routed = false;
            }
        }
        (routed, meter.spent(), meter.breach().is_some(), explored)
    }

    /// The placed positions of a net's pins.
    fn pin_points(diagram: &Diagram, network: &Network, net: NetId) -> Vec<Point> {
        let placement = diagram.placement();
        network
            .net(net)
            .pins()
            .iter()
            .map(|&pin| placement.pin_position(network, pin))
            .collect()
    }

    /// Routed nets whose wires pass near the failed net's pins, lowest
    /// priority (fewest pins, latest definition) first, capped at
    /// [`MAX_VICTIMS`].
    fn pick_victims(&self, diagram: &Diagram, network: &Network, net: NetId) -> Vec<NetId> {
        let pins = Self::pin_points(diagram, network, net);
        let Some(&first) = pins.first() else {
            return Vec::new();
        };
        let mut lo = first;
        let mut hi = first;
        for p in &pins {
            lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
            hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
        }
        let zone = Rect::from_corners(lo, hi).inflate(2);
        let in_zone = |s: &Segment| {
            let (a, b) = s.endpoints();
            let (ll, ur) = (zone.lower_left(), zone.upper_right());
            match s.axis() {
                Axis::Horizontal => {
                    a.y >= ll.y && a.y <= ur.y && b.x >= ll.x && a.x <= ur.x
                }
                Axis::Vertical => {
                    a.x >= ll.x && a.x <= ur.x && b.y >= ll.y && a.y <= ur.y
                }
            }
        };
        let mut victims: Vec<NetId> = diagram
            .routes()
            .filter(|&(v, path)| v != net && path.segments().iter().any(in_zone))
            .map(|(v, _)| v)
            .collect();
        victims.sort_by_key(|&v| (network.net(v).pins().len(), usize::MAX - v.index()));
        victims.truncate(MAX_VICTIMS);
        victims
    }

    /// The salvage cascade for one failed net. Tries rip-up plus an
    /// escalated-budget retry, then the Lee fallback, then emits a
    /// ghost wire. Rip-up is all-or-nothing: if the net or any victim
    /// cannot be rerouted, every route is restored before moving on.
    ///
    /// Returns the step that handled the net, the search nodes the
    /// cascade expanded, and how many routed nets it ripped up.
    fn salvage_net(
        &self,
        diagram: &mut Diagram,
        network: &Network,
        map: &mut ObstacleMap,
        net: NetId,
        over_budget: bool,
    ) -> (SalvageStep, u64, u32) {
        let escalated = self.config.budget.scaled(ESCALATION_FACTOR);
        let mut nodes_spent: u64 = 0;

        let victims = self.pick_victims(diagram, network, net);
        let ripup_victims = victims.len() as u32;
        // Fault sites for the two salvage stages (inert by default):
        // an injected `error`/`garbage-output` makes the stage come up
        // empty, `budget-exhaust` starves its escalated budget, and
        // `panic` unwinds to the phase boundary in the core generator.
        let ripup_inject = if !victims.is_empty() || over_budget {
            netart_fault::fire(netart_fault::sites::ROUTE_SALVAGE_RIPUP)
        } else {
            None
        };
        let skip_ripup =
            matches!(ripup_inject, Some(FaultKind::Error | FaultKind::GarbageOutput));
        let ripup_budget = if ripup_inject == Some(FaultKind::BudgetExhaust) {
            crate::Budget::new().with_node_limit(0)
        } else {
            escalated
        };
        if (!victims.is_empty() || over_budget) && !skip_ripup {
            let net_before = diagram.route(net).cloned();
            let saved: Vec<(NetId, NetPath)> = victims
                .iter()
                .filter_map(|&v| diagram.clear_route(v).map(|p| (v, p)))
                .collect();
            for (v, _) in &saved {
                map.remove_net(*v);
            }
            let mut ok = {
                let mut meter = self.meter(ripup_budget);
                let routed =
                    self.route_net(diagram, network, map, net, &mut meter, &mut None);
                nodes_spent += meter.spent();
                routed
            };
            if ok {
                for (v, _) in &saved {
                    // A cancelled run must not keep rerouting victims;
                    // failing here rolls everything back below.
                    if self.cancelled() {
                        ok = false;
                        break;
                    }
                    let mut meter = self.meter(ripup_budget);
                    let routed =
                        self.route_net(diagram, network, map, *v, &mut meter, &mut None);
                    nodes_spent += meter.spent();
                    if !routed {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return (SalvageStep::RipUpRetry, nodes_spent, ripup_victims);
            }
            // Roll back: drop whatever the retry added, restore every
            // victim and the net's own prior (pre)route.
            map.remove_net(net);
            diagram.clear_route(net);
            if let Some(path) = net_before {
                for seg in split_at_junctions(path.segments()) {
                    map.add(seg, ObstacleKind::Net(net));
                }
                diagram.set_route(net, path);
            }
            for (v, path) in saved {
                map.remove_net(v);
                diagram.clear_route(v);
                for seg in split_at_junctions(path.segments()) {
                    map.add(seg, ObstacleKind::Net(v));
                }
                diagram.set_route(v, path);
            }
        }

        let lee_inject = netart_fault::fire(netart_fault::sites::ROUTE_SALVAGE_LEE);
        let lee_budget = if lee_inject == Some(FaultKind::BudgetExhaust) {
            crate::Budget::new().with_node_limit(0)
        } else {
            escalated
        };
        // The Lee stage is skipped outright on a cancelled run — the
        // net goes straight to its ghost wire so salvage ends within
        // one poll stride of the cancellation instead of starting
        // another escalated maze search.
        let (lee_ok, lee_nodes) = if self.cancelled()
            || matches!(lee_inject, Some(FaultKind::Error | FaultKind::GarbageOutput))
        {
            (false, 0)
        } else {
            self.lee_fallback(diagram, network, map, net, lee_budget)
        };
        nodes_spent += lee_nodes;
        if lee_ok {
            return (SalvageStep::LeeFallback, nodes_spent, ripup_victims);
        }

        // Last resort: an explicit placeholder so the diagram still
        // shows the connection.
        let pins = Self::pin_points(diagram, network, net);
        let lines = pins
            .split_first()
            .map(|(&first, rest)| rest.iter().map(|&p| (first, p)).collect())
            .unwrap_or_default();
        diagram.set_ghost(net, GhostWire { lines });
        (SalvageStep::GhostWire, nodes_spent, ripup_victims)
    }

    /// Routes a failed net with the Lee maze router, pin pair by pin
    /// pair, under `budget`. All-or-nothing like the main router.
    /// Returns success plus the nodes the maze searches expanded.
    fn lee_fallback(
        &self,
        diagram: &mut Diagram,
        network: &Network,
        map: &mut ObstacleMap,
        net: NetId,
        budget: crate::Budget,
    ) -> (bool, u64) {
        let pins = Self::pin_points(diagram, network, net);
        if pins.len() < 2 {
            return (false, 0);
        }
        let bounds = self.border_rect(diagram, network).inflate(-1);

        // Like route_net: the net's own system-terminal point obstacles
        // must not block it.
        let st_points: Vec<Point> = network
            .net(net)
            .pins()
            .iter()
            .filter_map(|&pin| match pin {
                Pin::System(st) => diagram.placement().system_term(st),
                Pin::Sub { .. } => None,
            })
            .collect();
        map.retain_not(|_, track, o| {
            o.kind == ObstacleKind::Module
                && o.span.is_point()
                && st_points.iter().any(|p| {
                    (p.y == track && p.x == o.span.lo()) || (p.x == track && p.y == o.span.lo())
                })
        });

        let prerouted: Vec<Segment> = diagram
            .route(net)
            .map(|p| p.segments().to_vec())
            .unwrap_or_default();
        let mut wired = prerouted.clone();
        let mut connected = vec![false; pins.len()];
        if wired.is_empty() {
            connected[0] = true;
        } else {
            for (i, p) in pins.iter().enumerate() {
                if wired.iter().any(|s| s.contains(*p)) {
                    connected[i] = true;
                }
            }
            if !connected.iter().any(|&c| c) {
                connected[0] = true;
            }
        }

        let refresh = |map: &mut ObstacleMap, wired: &[Segment]| {
            map.remove_net(net);
            for seg in split_at_junctions(&merge_collinear(wired.to_vec())) {
                map.add(seg, ObstacleKind::Net(net));
            }
        };

        let mut meter = self.meter(budget);
        let mut ok = true;
        while ok {
            let next = (0..pins.len()).filter(|&i| !connected[i]).min_by_key(|&i| {
                (0..pins.len())
                    .filter(|&j| connected[j])
                    .map(|j| pins[i].manhattan(pins[j]))
                    .min()
                    .unwrap_or(u32::MAX)
            });
            let Some(i) = next else { break };
            let target = (0..pins.len())
                .filter(|&j| connected[j])
                .min_by_key(|&j| pins[i].manhattan(pins[j]));
            let Some(j) = target else {
                ok = false;
                break;
            };
            match lee::route_two_points_metered(map, bounds, pins[i], pins[j], net, &mut meter) {
                Some(path) => {
                    wired.extend(path.segments());
                    refresh(map, &wired);
                    connected[i] = true;
                    for (k, p) in pins.iter().enumerate() {
                        if !connected[k] && wired.iter().any(|s| s.contains(*p)) {
                            connected[k] = true;
                        }
                    }
                }
                None => ok = false,
            }
        }

        for p in &st_points {
            map.add_point(*p, ObstacleKind::Module);
        }

        if ok {
            diagram.set_route(net, NetPath::from_segments(merge_collinear(wired)));
            (true, meter.spent())
        } else {
            refresh(map, &prerouted);
            (false, meter.spent())
        }
    }
}

/// Manhattan distance from a point to the nearest wire segment.
fn dist_to_wires(p: Point, wires: &[Segment]) -> u32 {
    wires
        .iter()
        .map(|s| {
            let (a, b) = s.endpoints();
            match s.axis() {
                netart_geom::Axis::Horizontal => {
                    p.x.clamp(a.x, b.x).abs_diff(p.x) + p.y.abs_diff(s.track())
                }
                netart_geom::Axis::Vertical => {
                    p.y.clamp(a.y, b.y).abs_diff(p.y) + p.x.abs_diff(s.track())
                }
            }
        })
        .min()
        .unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_geom::Rotation;
    use netart_netlist::{Library, ModuleId, NetworkBuilder, Template, TermType};

    fn buf_lib() -> (Library, netart_netlist::TemplateId) {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("buf", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        (lib, t)
    }

    /// Two buffers placed facing each other with one net between them.
    fn simple_diagram() -> (Diagram, NetId) {
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(10, 0), Rotation::R0);
        (Diagram::new(network, placement), n)
    }

    #[test]
    fn straight_net_routes_clean() {
        let (mut d, n) = simple_diagram();
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty());
        assert_eq!(report.routed, vec![n]);
        assert_eq!(report.completion(), 1.0);
        let path = d.route(n).unwrap();
        assert_eq!(path.bends(), 0, "{:?}", path.segments());
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn multipoint_net_routes_as_tree() {
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let u2 = b.add_instance("u2", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect_pin("n", u2, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(10, 0), Rotation::R0);
        placement.place_module(u2, Point::new(10, 8), Rotation::R0);
        let mut d = Diagram::new(network, placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty(), "{report:?}");
        let path = d.route(n).unwrap();
        let pins = [Point::new(4, 1), Point::new(10, 1), Point::new(10, 9)];
        assert!(path.connects(&pins), "{:?}", path.segments());
        assert!(path.is_tree());
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn system_terminal_net() {
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("in", TermType::In).unwrap();
        b.connect("nin", st).unwrap();
        b.connect_pin("nin", u0, "a").unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let network = b.finish().unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(10, 0), Rotation::R0);
        placement.place_system_term(st, Point::new(-3, 1));
        let mut d = Diagram::new(network, placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty(), "{report:?}");
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn pre_cancelled_run_fails_every_net_without_searching() {
        let (mut d, n) = simple_diagram();
        let token = crate::CancelToken::new();
        token.cancel();
        let report =
            Eureka::new(RouteConfig::default().with_cancel(token)).route(&mut d);
        assert_eq!(report.failed, vec![n]);
        assert!(report.routed.is_empty());
        assert!(report.salvaged.is_empty(), "no salvage after cancel");
        assert!(d.route(n).is_none());
        let spent: u64 = report.net_stats.iter().map(|s| s.nodes_expanded).sum();
        assert_eq!(spent, 0, "cancelled run must not expand nodes");
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let (mut d, n) = simple_diagram();
        let report =
            Eureka::new(RouteConfig::default().with_cancel(crate::CancelToken::new()))
                .route(&mut d);
        assert!(report.failed.is_empty());
        assert_eq!(report.routed, vec![n]);
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn prerouted_net_is_kept_and_respected() {
        let (mut d, n) = simple_diagram();
        // Preroute the net by hand on a silly detour.
        let pre = NetPath::from_segments(vec![
            Segment::vertical(4, 1, 5),
            Segment::horizontal(5, 4, 10),
            Segment::vertical(10, 1, 5),
        ]);
        d.set_route(n, pre.clone());
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty());
        assert_eq!(d.route(n).unwrap().segments(), pre.segments(), "untouched");
    }

    #[test]
    fn partial_preroute_is_extended() {
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let u2 = b.add_instance("u2", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect_pin("n", u2, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(10, 0), Rotation::R0);
        placement.place_module(u2, Point::new(10, 8), Rotation::R0);
        let mut d = Diagram::new(network, placement);
        // Preroute only the u0-u1 stretch.
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 10)]));
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty(), "{report:?}");
        let path = d.route(n).unwrap();
        assert!(path.connects(&[Point::new(4, 1), Point::new(10, 1), Point::new(10, 9)]));
        // The prerouted stretch survives verbatim.
        assert!(path.segments().iter().any(|s| s.contains(Point::new(7, 1))));
    }

    #[test]
    fn blocked_net_reports_failure_without_partial_wires() {
        let (lib, t) = buf_lib();
        let mut wall_lib = lib;
        let wall = wall_lib
            .add_template(Template::new("wall", (2, 40)).unwrap())
            .unwrap();
        let mut b = NetworkBuilder::new(wall_lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        // Walls boxing u1's input completely.
        let w: Vec<ModuleId> = (0..4)
            .map(|i| b.add_instance(format!("w{i}"), wall).unwrap())
            .collect();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let network = b.finish().unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 18), Rotation::R0);
        // u1 inside a closed court of walls.
        placement.place_module(u1, Point::new(20, 18), Rotation::R0);
        placement.place_module(w[0], Point::new(17, 0), Rotation::R0); // left wall
        placement.place_module(w[1], Point::new(26, 0), Rotation::R0); // right wall
        placement.place_module(w[2], Point::new(19, 40), Rotation::R90); // hmm: top
        placement.place_module(w[3], Point::new(17, 40), Rotation::R0);
        // Build a simple closed box manually instead: left, right walls
        // tall; connect top/bottom with rotated walls.
        let mut d = Diagram::new(network, placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        // Depending on wall geometry the net may be routable; the key
        // contract here: a failed net has no partial wires.
        for &f in &report.failed {
            assert!(d.route(f).is_none());
        }
    }

    #[test]
    fn claims_reduce_terminal_blocking() {
        // Dense two-column scenario from §5.7 figure 5.10: with claims,
        // both nets route; without, net order can strand C.
        let mut lib = Library::new();
        let left = lib
            .add_template(
                Template::new("l", (4, 6))
                    .unwrap()
                    .with_terminal("a", (4, 1), TermType::Out)
                    .unwrap()
                    .with_terminal("c", (4, 3), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let right = lib
            .add_template(
                Template::new("r", (4, 6))
                    .unwrap()
                    .with_terminal("b", (0, 5), TermType::In)
                    .unwrap()
                    .with_terminal("d", (0, 3), TermType::In)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let m0 = b.add_instance("m0", left).unwrap();
        let m1 = b.add_instance("m1", right).unwrap();
        b.connect_pin("ab", m0, "a").unwrap();
        b.connect_pin("ab", m1, "b").unwrap();
        b.connect_pin("cd", m0, "c").unwrap();
        b.connect_pin("cd", m1, "d").unwrap();
        let network = b.finish().unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(m0, Point::new(0, 0), Rotation::R0);
        placement.place_module(m1, Point::new(7, 0), Rotation::R0);
        let mut d = Diagram::new(network, placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty(), "{report:?}");
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn cyclic_preroute_is_dropped_and_rerouted() {
        let (mut d, n) = simple_diagram();
        // A looping preroute violating Appendix F.
        d.set_route(
            n,
            NetPath::from_segments(vec![
                Segment::horizontal(1, 4, 10),
                Segment::horizontal(4, 4, 10),
                Segment::vertical(4, 1, 4),
                Segment::vertical(10, 1, 4),
            ]),
        );
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert!(report.failed.is_empty(), "{report:?}");
        let path = d.route(n).unwrap();
        assert!(!path.has_cycle(), "{:?}", path.segments());
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn deterministic_routing() {
        let (mut d1, _) = simple_diagram();
        let (mut d2, n) = simple_diagram();
        Eureka::new(RouteConfig::default()).route(&mut d1);
        Eureka::new(RouteConfig::default()).route(&mut d2);
        assert_eq!(d1.route(n).unwrap().segments(), d2.route(n).unwrap().segments());
    }

    #[test]
    fn lee_fallback_routes_a_failed_net() {
        let (mut d, n) = simple_diagram();
        let router = Eureka::new(RouteConfig::default());
        let network = d.network().clone();
        let mut map = router.build_map(&d, &network);
        let (ok, nodes) = router.lee_fallback(&mut d, &network, &mut map, n, crate::Budget::UNLIMITED);
        assert!(ok, "lee fallback must connect a plainly routable net");
        assert!(nodes > 0, "maze search must report expanded nodes");
        let path = d.route(n).unwrap();
        assert!(path.connects(&[Point::new(4, 1), Point::new(10, 1)]));
        assert!(path.is_tree());
        assert!(d.check().is_ok(), "{}", d.check());
    }

    #[test]
    fn lee_fallback_under_tiny_budget_reports_failure_and_rolls_back() {
        let (mut d, n) = simple_diagram();
        let router = Eureka::new(RouteConfig::default());
        let network = d.network().clone();
        let mut map = router.build_map(&d, &network);
        let before = map.len();
        let (ok, _) = router.lee_fallback(
            &mut d,
            &network,
            &mut map,
            n,
            crate::Budget::new().with_node_limit(1),
        );
        assert!(!ok);
        assert!(d.route(n).is_none(), "failed fallback leaves no route");
        assert_eq!(map.len(), before, "map rolled back to preroute state");
    }

    #[test]
    fn salvage_emits_ghost_when_nothing_works() {
        // Enclose u1's input terminal completely: a blocker module butts
        // flush against u1, so the pin at their shared edge has no free
        // neighbour and no router — escalated or Lee — can reach it.
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let blocker = b.add_instance("blocker", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        placement.place_module(u0, Point::new(0, 10), Rotation::R0);
        placement.place_module(u1, Point::new(20, 10), Rotation::R0);
        placement.place_module(blocker, Point::new(16, 10), Rotation::R0);
        let mut d = Diagram::new(network, placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut d);
        assert_eq!(report.failed, vec![n]);
        assert_eq!(report.salvaged.len(), 1);
        assert_eq!(report.salvaged[0].step, SalvageStep::GhostWire);
        assert!(report.salvaged[0].net == n);
        let ghost = d.ghost(n).expect("ghost wire recorded");
        assert_eq!(ghost.lines, vec![(Point::new(4, 11), Point::new(20, 11))]);
        assert!(d.route(n).is_none(), "ghosted net must not carry wires");
    }

    #[test]
    fn rip_up_rollback_preserves_victim_routes() {
        // `good` routes straight through the corridor next to `bad`'s
        // pins, so salvage picks it as a rip-up victim; `bad` stays
        // unroutable (its sink pin is enclosed), so the cascade must
        // roll `good` back verbatim before ghosting `bad`.
        let (lib, t) = buf_lib();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let u2 = b.add_instance("u2", t).unwrap();
        let u3 = b.add_instance("u3", t).unwrap();
        let blocker = b.add_instance("blocker", t).unwrap();
        b.connect_pin("good", u0, "y").unwrap();
        b.connect_pin("good", u1, "a").unwrap();
        b.connect_pin("bad", u2, "y").unwrap();
        b.connect_pin("bad", u3, "a").unwrap();
        let network = b.finish().unwrap();
        let good = network.net_by_name("good").unwrap();
        let bad = network.net_by_name("bad").unwrap();
        let mut placement = netart_diagram::Placement::new(&network);
        // `good` spans (4,9)-(10,9), inside the rip-up zone around
        // `bad`'s pins at (4,11) and (20,11).
        placement.place_module(u0, Point::new(0, 8), Rotation::R0);
        placement.place_module(u1, Point::new(10, 8), Rotation::R0);
        placement.place_module(u2, Point::new(0, 10), Rotation::R0);
        placement.place_module(u3, Point::new(20, 10), Rotation::R0);
        placement.place_module(blocker, Point::new(16, 10), Rotation::R0);
        let mut d = Diagram::new(network.clone(), placement);
        let router = Eureka::new(RouteConfig::default());
        assert_eq!(
            router.pick_victims(&d, &network, bad),
            vec![],
            "nothing routed yet, no victims"
        );
        let report = router.route(&mut d);
        assert!(report.routed.contains(&good), "{report:?}");
        assert_eq!(report.failed, vec![bad]);
        let path = d.route(good).expect("victim restored after rollback");
        assert!(path.connects(&[Point::new(4, 9), Point::new(10, 9)]));
        assert!(d.ghost(bad).is_some());
        assert!(d.check().is_ok(), "{}", d.check());
    }
}
