//! EUREKA — the routing phase of the `netart` schematic diagram
//! generator (§5 of Koster & Stok, 1989), plus the baseline routers the
//! paper surveys.
//!
//! The main router implements the *line-expansion* principle (§5.5,
//! after Heyns, Sansen & Beke): instead of probing single escape lines
//! like a line-search router, each expansion step sweeps a whole active
//! segment across the plane and keeps the *borders* of the newly
//! reached zone as the next generation of active segments. The search
//! therefore covers every reachable point — a connection is found
//! whenever one exists — while advancing one bend per generation, so
//! the first meeting of the two wavefronts uses a minimum number of
//! bends; among the meeting points of that generation the router picks
//! minimum crossovers, then minimum wire length (§5.6.1; the `-s`
//! option of Appendix F swaps the two tie-breaks).
//!
//! Extensions from §5.7 are included: *claimpoints* reserving the first
//! track in front of every connected terminal (with a retry pass after
//! all claims are lifted), acceptance of prerouted nets, and fixable
//! plane borders (`-u`/`-d`/`-r`/`-l`).
//!
//! Baselines: [`lee`] (wave-propagation maze router, guaranteed minimum
//! length), [`hightower`] (escape-line router, fast but incomplete) and
//! [`channel`] (left-edge channel router).
//!
//! # Examples
//!
//! ```
//! use netart_place::{Pablo, PlaceConfig};
//! use netart_route::{Eureka, RouteConfig};
//! # use netart_netlist::{Library, NetworkBuilder, Template, TermType};
//! # use netart_diagram::Diagram;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut lib = Library::new();
//! # let inv = lib.add_template(Template::new("inv", (4, 2))?
//! #     .with_terminal("a", (0, 1), TermType::In)?
//! #     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! # let mut b = NetworkBuilder::new(lib);
//! # let u0 = b.add_instance("u0", inv)?;
//! # let u1 = b.add_instance("u1", inv)?;
//! # b.connect_pin("n", u0, "y")?;
//! # b.connect_pin("n", u1, "a")?;
//! # let network = b.finish()?;
//! let placement = Pablo::new(PlaceConfig::strings()).place(&network);
//! let mut diagram = Diagram::new(network, placement);
//! let report = Eureka::new(RouteConfig::default()).route(&mut diagram);
//! assert!(report.failed.is_empty());
//! assert!(diagram.check().is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod budget;
pub mod channel;
mod config;
mod expand;
pub mod hightower;
pub mod lee;
pub mod line_expansion;
mod obstacles;
mod router;

pub use budget::{Budget, BudgetBreach, BudgetMeter, CancelToken, TIME_POLL_STRIDE};
pub use config::{NetOrder, RouteConfig};
pub use obstacles::{Obstacle, ObstacleKind, ObstacleMap};
pub use router::{Eureka, NetRouteStats, RouteReport, SalvageRecord, SalvageStep};
