//! Property-based tests for the geometry substrate.

use netart_geom::{Interval, Point, Rect, Rotation, Segment};
use proptest::prelude::*;

const C: i32 = 10_000; // coordinate bound keeping arithmetic far from overflow

fn interval() -> impl Strategy<Value = Interval> {
    (-C..C, 0..200i32).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn point() -> impl Strategy<Value = Point> {
    (-C..C, -C..C).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), 0..100i32, 0..100i32).prop_map(|(p, w, h)| Rect::new(p, w, h))
}

proptest! {
    #[test]
    fn interval_subtract_preserves_points(a in interval(), b in interval()) {
        let (l, r) = a.subtract(b);
        for v in a.iter() {
            let kept = l.is_some_and(|i| i.contains(v)) || r.is_some_and(|i| i.contains(v));
            prop_assert_eq!(kept, !b.contains(v), "point {} of {} vs {}", v, a, b);
        }
        // The removed parts never reappear.
        if let Some(l) = l { prop_assert!(!l.overlaps(b)); }
        if let Some(r) = r { prop_assert!(!r.overlaps(b)); }
    }

    #[test]
    fn interval_intersection_is_commutative(a in interval(), b in interval()) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        prop_assert_eq!(a.overlaps(b), a.intersect(b).is_some());
    }

    #[test]
    fn hull_contains_both(a in interval(), b in interval()) {
        let h = a.hull(b);
        prop_assert!(h.contains_interval(a));
        prop_assert!(h.contains_interval(b));
    }

    #[test]
    fn manhattan_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn rect_overlap_is_symmetric(a in rect(), b in rect()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlaps_strictly(&b), b.overlaps_strictly(&a));
        // Strict overlap implies overlap.
        if a.overlaps_strictly(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn rect_edges_lie_on_rect(r in rect()) {
        for e in r.edges() {
            let (a, b) = e.endpoints();
            prop_assert!(r.contains(a) && r.contains(b));
            prop_assert!(!r.contains_strictly(a) && !r.contains_strictly(b));
        }
    }

    #[test]
    fn rotation_preserves_boundary(
        r in prop::sample::select(Rotation::ALL.to_vec()),
        w in 1..50i32,
        h in 1..50i32,
        t in 0..200i32,
    ) {
        // Pick a boundary point of the w x h module.
        let perimeter = 2 * (w + h);
        let t = t % perimeter;
        let p = if t < w {
            Point::new(t, 0)
        } else if t < w + h {
            Point::new(w, t - w)
        } else if t < 2 * w + h {
            Point::new(2 * w + h - t, h)
        } else {
            Point::new(0, perimeter - t)
        };
        let (rw, rh) = r.apply_size((w, h));
        let rp = r.apply_point(p, (w, h));
        let on_boundary = rp.x == 0 || rp.x == rw || rp.y == 0 || rp.y == rh;
        prop_assert!(on_boundary, "{} under {} gave {}", p, r, rp);
        prop_assert!(Rect::new(Point::ORIGIN, rw, rh).contains(rp));
    }

    #[test]
    fn segment_crossing_lies_on_both(
        ht in -C..C, hx0 in -C..C, hlen in 0..100i32,
        vt in -C..C, vy0 in -C..C, vlen in 0..100i32,
    ) {
        let hseg = Segment::horizontal(ht, hx0, hx0 + hlen);
        let vseg = Segment::vertical(vt, vy0, vy0 + vlen);
        if let Some(p) = hseg.crossing(&vseg) {
            prop_assert!(hseg.contains(p));
            prop_assert!(vseg.contains(p));
        } else {
            prop_assert!(!(hseg.span().contains(vt) && vseg.span().contains(ht)));
        }
    }

    #[test]
    fn segment_merge_covers_union(a_lo in -C..C, a_len in 0..50i32, b_lo in -C..C, b_len in 0..50i32) {
        let a = Segment::horizontal(0, a_lo, a_lo + a_len);
        let b = Segment::horizontal(0, b_lo, b_lo + b_len);
        match a.merge(&b) {
            Some(m) => {
                prop_assert!(m.span().contains_interval(a.span()));
                prop_assert!(m.span().contains_interval(b.span()));
                // No gap: every point of the merge is in a or b.
                for v in m.span().iter() {
                    prop_assert!(a.span().contains(v) || b.span().contains(v));
                }
            }
            None => prop_assert!(
                !a.span().overlaps(b.span())
                    && a.span().lo() != b.span().hi()
                    && b.span().lo() != a.span().hi()
            ),
        }
    }
}
