use std::fmt;

use crate::{Axis, Interval, Point};

/// An axis-aligned segment on an integer track.
///
/// A segment lies along an [`Axis`] at a fixed perpendicular coordinate
/// (its *track*) and spans an [`Interval`] along the axis. This mirrors
/// the paper's obstacle tuples `(i, x, y, ...)` where `i` is the track
/// index and `[x, y]` the range.
///
/// A horizontal segment at track `t` covers the points `(span, t)`;
/// a vertical segment at track `t` covers the points `(t, span)`.
///
/// # Examples
///
/// ```
/// use netart_geom::{Point, Segment};
///
/// let h = Segment::horizontal(3, 0, 5);
/// let v = Segment::vertical(2, 1, 8);
/// assert_eq!(h.crossing(&v), Some(Point::new(2, 3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Segment {
    axis: Axis,
    track: i32,
    span: Interval,
}

impl Segment {
    /// A horizontal segment at `y = track` spanning `[x0, x1]`.
    ///
    /// # Panics
    ///
    /// Panics if `x0 > x1`.
    pub fn horizontal(track: i32, x0: i32, x1: i32) -> Self {
        Segment {
            axis: Axis::Horizontal,
            track,
            span: Interval::new(x0, x1),
        }
    }

    /// A vertical segment at `x = track` spanning `[y0, y1]`.
    ///
    /// # Panics
    ///
    /// Panics if `y0 > y1`.
    pub fn vertical(track: i32, y0: i32, y1: i32) -> Self {
        Segment {
            axis: Axis::Vertical,
            track,
            span: Interval::new(y0, y1),
        }
    }

    /// A segment along `axis` at the given track spanning `span`.
    pub fn on_axis(axis: Axis, track: i32, span: Interval) -> Self {
        Segment { axis, track, span }
    }

    /// The degenerate segment covering a single point, oriented along
    /// `axis`.
    pub fn point(axis: Axis, p: Point) -> Self {
        match axis {
            Axis::Horizontal => Segment::horizontal(p.y, p.x, p.x),
            Axis::Vertical => Segment::vertical(p.x, p.y, p.y),
        }
    }

    /// The segment between two points sharing a coordinate.
    ///
    /// Returns `None` if the points are not axis-aligned. Two identical
    /// points yield a degenerate horizontal segment.
    pub fn between(a: Point, b: Point) -> Option<Segment> {
        if a.y == b.y {
            Some(Segment::horizontal(a.y, a.x.min(b.x), a.x.max(b.x)))
        } else if a.x == b.x {
            Some(Segment::vertical(a.x, a.y.min(b.y), a.y.max(b.y)))
        } else {
            None
        }
    }

    /// The axis this segment lies along.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The fixed perpendicular coordinate.
    pub fn track(&self) -> i32 {
        self.track
    }

    /// The range along the axis.
    pub fn span(&self) -> Interval {
        self.span
    }

    /// Wire length of the segment (`0` for a point).
    ///
    /// A segment always covers at least one grid point, so there is
    /// deliberately no `is_empty`; see [`Segment::is_point`].
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        self.span.len()
    }

    /// `true` when the segment is a single point.
    pub fn is_point(&self) -> bool {
        self.span.is_point()
    }

    /// The two endpoints `(low, high)` along the axis.
    pub fn endpoints(&self) -> (Point, Point) {
        (self.point_at(self.span.lo()), self.point_at(self.span.hi()))
    }

    /// The point at axis coordinate `v` on this segment's track.
    ///
    /// `v` need not lie within the span; the point is simply on the
    /// segment's carrier line.
    pub fn point_at(&self, v: i32) -> Point {
        match self.axis {
            Axis::Horizontal => Point::new(v, self.track),
            Axis::Vertical => Point::new(self.track, v),
        }
    }

    /// `true` when `p` lies on the segment.
    pub fn contains(&self, p: Point) -> bool {
        match self.axis {
            Axis::Horizontal => p.y == self.track && self.span.contains(p.x),
            Axis::Vertical => p.x == self.track && self.span.contains(p.y),
        }
    }

    /// The intersection point with a perpendicular segment, if the two
    /// segments cross or touch.
    ///
    /// Collinear segments return `None`; use [`Segment::overlap`] for
    /// those.
    pub fn crossing(&self, other: &Segment) -> Option<Point> {
        if self.axis == other.axis {
            return None;
        }
        (self.span.contains(other.track) && other.span.contains(self.track)).then(|| {
            match self.axis {
                Axis::Horizontal => Point::new(other.track, self.track),
                Axis::Vertical => Point::new(self.track, other.track),
            }
        })
    }

    /// `true` when a perpendicular crossing with `other` happens strictly
    /// inside both segments (not at an endpoint of either). This is the
    /// crossover notion counted by the diagram quality metrics: nets are
    /// allowed to cross, touching endpoints would be an electrical join.
    pub fn crosses_interior(&self, other: &Segment) -> bool {
        if self.axis == other.axis {
            return false;
        }
        self.span.lo() < other.track
            && other.track < self.span.hi()
            && other.span.lo() < self.track
            && self.track < other.span.hi()
    }

    /// The shared part of two collinear segments on the same track.
    pub fn overlap(&self, other: &Segment) -> Option<Segment> {
        if self.axis != other.axis || self.track != other.track {
            return None;
        }
        self.span.intersect(other.span).map(|span| Segment {
            axis: self.axis,
            track: self.track,
            span,
        })
    }

    /// Merges two collinear touching/overlapping segments into one.
    ///
    /// Returns `None` when they are not collinear or leave a gap.
    pub fn merge(&self, other: &Segment) -> Option<Segment> {
        if self.axis != other.axis || self.track != other.track {
            return None;
        }
        // Touching at an endpoint or overlapping merges; a gap does not.
        if self.span.lo() > other.span.hi() + 1 || other.span.lo() > self.span.hi() + 1 {
            return None;
        }
        // Disallow merging across a one-unit gap: spans must share a point.
        if !self.span.overlaps(other.span)
            && self.span.lo() != other.span.hi()
            && other.span.lo() != self.span.hi()
        {
            return None;
        }
        Some(Segment {
            axis: self.axis,
            track: self.track,
            span: self.span.hull(other.span),
        })
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Horizontal => write!(f, "h@y={} x{}", self.track, self.span),
            Axis::Vertical => write!(f, "v@x={} y{}", self.track, self.span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_points() {
        let h = Segment::horizontal(2, -1, 4);
        assert_eq!(h.endpoints(), (Point::new(-1, 2), Point::new(4, 2)));
        assert_eq!(h.point_at(3), Point::new(3, 2));
        let v = Segment::vertical(7, 0, 3);
        assert_eq!(v.endpoints(), (Point::new(7, 0), Point::new(7, 3)));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn between_points() {
        assert_eq!(
            Segment::between(Point::new(3, 1), Point::new(0, 1)),
            Some(Segment::horizontal(1, 0, 3))
        );
        assert_eq!(
            Segment::between(Point::new(2, 5), Point::new(2, 2)),
            Some(Segment::vertical(2, 2, 5))
        );
        assert_eq!(Segment::between(Point::new(0, 0), Point::new(1, 1)), None);
    }

    #[test]
    fn containment() {
        let h = Segment::horizontal(2, 0, 4);
        assert!(h.contains(Point::new(0, 2)));
        assert!(h.contains(Point::new(4, 2)));
        assert!(!h.contains(Point::new(5, 2)));
        assert!(!h.contains(Point::new(2, 3)));
    }

    #[test]
    fn perpendicular_crossing() {
        let h = Segment::horizontal(3, 0, 5);
        let v = Segment::vertical(2, 1, 8);
        assert_eq!(h.crossing(&v), Some(Point::new(2, 3)));
        assert_eq!(v.crossing(&h), Some(Point::new(2, 3)));
        let miss = Segment::vertical(9, 1, 8);
        assert_eq!(h.crossing(&miss), None);
        // Parallel segments never report a crossing.
        assert_eq!(h.crossing(&Segment::horizontal(3, 0, 5)), None);
    }

    #[test]
    fn interior_crossing_excludes_endpoints() {
        let h = Segment::horizontal(3, 0, 5);
        assert!(h.crosses_interior(&Segment::vertical(2, 0, 6)));
        // Touching at h's endpoint x=0.
        assert!(!h.crosses_interior(&Segment::vertical(0, 0, 6)));
        // Touching at v's endpoint y=3.
        assert!(!h.crosses_interior(&Segment::vertical(2, 3, 6)));
    }

    #[test]
    fn collinear_overlap_and_merge() {
        let a = Segment::horizontal(1, 0, 5);
        let b = Segment::horizontal(1, 3, 9);
        assert_eq!(a.overlap(&b), Some(Segment::horizontal(1, 3, 5)));
        assert_eq!(a.merge(&b), Some(Segment::horizontal(1, 0, 9)));
        let touching = Segment::horizontal(1, 5, 7);
        assert_eq!(a.merge(&touching), Some(Segment::horizontal(1, 0, 7)));
        let gap = Segment::horizontal(1, 7, 9);
        assert_eq!(a.merge(&gap), None);
        let other_track = Segment::horizontal(2, 0, 5);
        assert_eq!(a.overlap(&other_track), None);
        assert_eq!(a.merge(&other_track), None);
    }

    #[test]
    fn degenerate_point_segment() {
        let p = Segment::point(Axis::Vertical, Point::new(4, 4));
        assert!(p.is_point());
        assert_eq!(p.len(), 0);
        assert!(p.contains(Point::new(4, 4)));
    }
}
