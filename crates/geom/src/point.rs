use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::Dir;

/// A point on the integer grid of a schematic diagram.
///
/// # Examples
///
/// ```
/// use netart_geom::Point;
///
/// let a = Point::new(2, 3);
/// let b = Point::new(-1, 4);
/// assert_eq!(a + b, Point::new(1, 7));
/// assert_eq!(a.manhattan(b), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate, growing to the right.
    pub x: i32,
    /// Vertical coordinate, growing upward.
    pub y: i32,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`.
    ///
    /// This is the natural wire-length metric for rectilinear routing.
    pub fn manhattan(self, other: Point) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Squared Euclidean distance to `other`, saturating at `i64::MAX`.
    ///
    /// The placement phase minimises this quantity between
    /// centre-of-gravity points, following `PLACE_BOX` in the paper.
    /// Saturation only kicks in for coordinates near the `i32` extremes,
    /// far outside any realistic diagram.
    pub fn dist2(self, other: Point) -> i64 {
        let dx = i128::from(self.x) - i128::from(other.x);
        let dy = i128::from(self.y) - i128::from(other.y);
        i64::try_from(dx * dx + dy * dy).unwrap_or(i64::MAX)
    }

    /// The neighbouring point one step in direction `dir`.
    ///
    /// ```
    /// use netart_geom::{Dir, Point};
    /// assert_eq!(Point::new(0, 0).step(Dir::Up), Point::new(0, 1));
    /// ```
    pub fn step(self, dir: Dir) -> Point {
        self.step_by(dir, 1)
    }

    /// The point `n` steps in direction `dir`.
    pub fn step_by(self, dir: Dir, n: i32) -> Point {
        match dir {
            Dir::Left => Point::new(self.x - n, self.y),
            Dir::Right => Point::new(self.x + n, self.y),
            Dir::Down => Point::new(self.x, self.y - n),
            Dir::Up => Point::new(self.x, self.y + n),
        }
    }
}

impl From<(i32, i32)> for Point {
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, -2);
        let b = Point::new(1, 5);
        assert_eq!(a + b, Point::new(4, 3));
        assert_eq!(a - b, Point::new(2, -7));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(-3, 7);
        let b = Point::new(4, -1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 7 + 8);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn dist2_matches_squares() {
        assert_eq!(Point::new(0, 0).dist2(Point::new(3, 4)), 25);
        assert_eq!(Point::new(-1, -1).dist2(Point::new(-1, -1)), 0);
    }

    #[test]
    fn dist2_does_not_overflow_at_extremes() {
        let a = Point::new(i32::MIN, i32::MIN);
        let b = Point::new(i32::MAX, i32::MAX);
        // Would overflow i32 arithmetic by a wide margin.
        assert!(a.dist2(b) > 0);
    }

    #[test]
    fn step_in_each_direction() {
        let p = Point::new(5, 5);
        assert_eq!(p.step(Dir::Left), Point::new(4, 5));
        assert_eq!(p.step(Dir::Right), Point::new(6, 5));
        assert_eq!(p.step(Dir::Down), Point::new(5, 4));
        assert_eq!(p.step(Dir::Up), Point::new(5, 6));
        assert_eq!(p.step_by(Dir::Up, 3), Point::new(5, 8));
        assert_eq!(p.step_by(Dir::Left, -2), Point::new(7, 5));
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (2, 9).into();
        assert_eq!(p.to_string(), "(2, 9)");
    }
}
