use std::fmt;

/// One of the two axes of the plane.
///
/// A [`crate::Segment`] lies *along* an axis; routing sweeps move
/// *perpendicular* to the segment being expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// The x axis.
    Horizontal,
    /// The y axis.
    Vertical,
}

impl Axis {
    /// The other axis.
    ///
    /// ```
    /// use netart_geom::Axis;
    /// assert_eq!(Axis::Horizontal.perpendicular(), Axis::Vertical);
    /// ```
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::Horizontal => "horizontal",
            Axis::Vertical => "vertical",
        })
    }
}

/// A direction in the plane.
///
/// Used both for routing sweep directions and, via the [`Side`] alias,
/// for the side of a module a terminal sits on (§4.6.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Towards negative x.
    Left,
    /// Towards positive x.
    Right,
    /// Towards positive y.
    Up,
    /// Towards negative y.
    Down,
}

/// The side of a module a terminal is situated on.
///
/// The paper's `side : T -> { left, right, up, down }` function; it is the
/// same set of values as [`Dir`], so we use a type alias.
pub type Side = Dir;

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::Left, Dir::Right, Dir::Up, Dir::Down];

    /// The opposite direction.
    ///
    /// ```
    /// use netart_geom::Dir;
    /// assert_eq!(Dir::Left.opposite(), Dir::Right);
    /// assert_eq!(Dir::Up.opposite(), Dir::Down);
    /// ```
    pub fn opposite(self) -> Dir {
        match self {
            Dir::Left => Dir::Right,
            Dir::Right => Dir::Left,
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }

    /// The axis this direction moves along.
    ///
    /// `Left`/`Right` move along the horizontal axis, `Up`/`Down` along
    /// the vertical axis.
    pub fn axis(self) -> Axis {
        match self {
            Dir::Left | Dir::Right => Axis::Horizontal,
            Dir::Up | Dir::Down => Axis::Vertical,
        }
    }

    /// The axis of a *segment that expands in this direction*: a segment
    /// sweeping up or down is horizontal, one sweeping left or right is
    /// vertical.
    pub fn segment_axis(self) -> Axis {
        self.axis().perpendicular()
    }

    /// `+1` for `Right`/`Up`, `-1` for `Left`/`Down`.
    pub fn sign(self) -> i32 {
        match self {
            Dir::Right | Dir::Up => 1,
            Dir::Left | Dir::Down => -1,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::Left => "left",
            Dir::Right => "right",
            Dir::Up => "up",
            Dir::Down => "down",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites_are_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn axis_of_each_direction() {
        assert_eq!(Dir::Left.axis(), Axis::Horizontal);
        assert_eq!(Dir::Right.axis(), Axis::Horizontal);
        assert_eq!(Dir::Up.axis(), Axis::Vertical);
        assert_eq!(Dir::Down.axis(), Axis::Vertical);
    }

    #[test]
    fn segment_axis_is_perpendicular_to_motion() {
        for d in Dir::ALL {
            assert_eq!(d.segment_axis(), d.axis().perpendicular());
        }
    }

    #[test]
    fn signs() {
        assert_eq!(Dir::Right.sign(), 1);
        assert_eq!(Dir::Up.sign(), 1);
        assert_eq!(Dir::Left.sign(), -1);
        assert_eq!(Dir::Down.sign(), -1);
    }

    #[test]
    fn display() {
        assert_eq!(Dir::Up.to_string(), "up");
        assert_eq!(Axis::Vertical.to_string(), "vertical");
    }
}
