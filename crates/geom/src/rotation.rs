use std::fmt;

use crate::{Point, Side};

/// A right-angle rotation of a module, counter-clockwise.
///
/// The module placement phase rotates each module so that the terminal
/// connecting it to its predecessor in a string faces left (§4.6.4 of the
/// paper). Rotations act on terminal positions given relative to the
/// module's lower-left corner and on the module size.
///
/// # Examples
///
/// ```
/// use netart_geom::{Point, Rotation};
///
/// // A 4x2 module with a terminal at (4, 1) on its right edge:
/// let size = (4, 2);
/// let term = Point::new(4, 1);
/// // rotated by 180 degrees the module is still 4x2 and the terminal
/// // lands on the left edge:
/// assert_eq!(Rotation::R180.apply_size(size), (4, 2));
/// assert_eq!(Rotation::R180.apply_point(term, size), Point::new(0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Rotation {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
}

impl Rotation {
    /// All four rotations in increasing angle order.
    pub const ALL: [Rotation; 4] = [Rotation::R0, Rotation::R90, Rotation::R180, Rotation::R270];

    /// The module size after rotation: 90° and 270° swap width and
    /// height.
    pub fn apply_size(self, (w, h): (i32, i32)) -> (i32, i32) {
        match self {
            Rotation::R0 | Rotation::R180 => (w, h),
            Rotation::R90 | Rotation::R270 => (h, w),
        }
    }

    /// A point relative to the module's lower-left corner, after rotating
    /// the module (of unrotated size `(w, h)`) and re-anchoring at the
    /// lower-left.
    pub fn apply_point(self, p: Point, (w, h): (i32, i32)) -> Point {
        match self {
            Rotation::R0 => p,
            Rotation::R90 => Point::new(h - p.y, p.x),
            Rotation::R180 => Point::new(w - p.x, h - p.y),
            Rotation::R270 => Point::new(p.y, w - p.x),
        }
    }

    /// The side a terminal ends up on after rotation.
    ///
    /// ```
    /// use netart_geom::{Rotation, Side};
    /// assert_eq!(Rotation::R90.apply_side(Side::Right), Side::Up);
    /// ```
    pub fn apply_side(self, side: Side) -> Side {
        let steps = match self {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        };
        let mut s = side;
        for _ in 0..steps {
            s = match s {
                Side::Right => Side::Up,
                Side::Up => Side::Left,
                Side::Left => Side::Down,
                Side::Down => Side::Right,
            };
        }
        s
    }

    /// The rotation that maps `from` onto `to`.
    pub fn mapping(from: Side, to: Side) -> Rotation {
        for r in Rotation::ALL {
            if r.apply_side(from) == to {
                return r;
            }
        }
        unreachable!("the four rotations cover all side mappings")
    }

    /// Composition: apply `self`, then `other`.
    pub fn then(self, other: Rotation) -> Rotation {
        let quarter = |r| match r {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        };
        match (quarter(self) + quarter(other)) % 4 {
            0 => Rotation::R0,
            1 => Rotation::R90,
            2 => Rotation::R180,
            _ => Rotation::R270,
        }
    }

    /// The inverse rotation.
    pub fn inverse(self) -> Rotation {
        match self {
            Rotation::R0 => Rotation::R0,
            Rotation::R90 => Rotation::R270,
            Rotation::R180 => Rotation::R180,
            Rotation::R270 => Rotation::R90,
        }
    }
}

impl fmt::Display for Rotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rotation::R0 => "0",
            Rotation::R90 => "90",
            Rotation::R180 => "180",
            Rotation::R270 => "270",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZE: (i32, i32) = (4, 2);

    #[test]
    fn size_swaps_on_quarter_turns() {
        assert_eq!(Rotation::R0.apply_size(SIZE), (4, 2));
        assert_eq!(Rotation::R90.apply_size(SIZE), (2, 4));
        assert_eq!(Rotation::R180.apply_size(SIZE), (4, 2));
        assert_eq!(Rotation::R270.apply_size(SIZE), (2, 4));
    }

    #[test]
    fn corner_points_stay_corners() {
        // Lower-left corner of the module under each rotation.
        let corners = [
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 2),
            Point::new(0, 2),
        ];
        for r in Rotation::ALL {
            let (w, h) = r.apply_size(SIZE);
            for c in corners {
                let p = r.apply_point(c, SIZE);
                assert!(
                    (p.x == 0 || p.x == w) && (p.y == 0 || p.y == h),
                    "{c} under {r} gave non-corner {p}"
                );
            }
        }
    }

    #[test]
    fn boundary_points_stay_on_boundary() {
        let term = Point::new(4, 1); // on the right edge
        assert_eq!(Rotation::R90.apply_point(term, SIZE), Point::new(1, 4));
        assert_eq!(Rotation::R180.apply_point(term, SIZE), Point::new(0, 1));
        assert_eq!(Rotation::R270.apply_point(term, SIZE), Point::new(1, 0));
    }

    #[test]
    fn side_rotation_matches_point_rotation() {
        // Terminal in the middle of each side of a square module.
        let size = (4, 4);
        let cases = [
            (Point::new(0, 2), Side::Left),
            (Point::new(4, 2), Side::Right),
            (Point::new(2, 4), Side::Up),
            (Point::new(2, 0), Side::Down),
        ];
        for r in Rotation::ALL {
            for (p, side) in cases {
                let rp = r.apply_point(p, size);
                let rs = r.apply_side(side);
                let (w, h) = r.apply_size(size);
                let on_expected_side = match rs {
                    Side::Left => rp.x == 0,
                    Side::Right => rp.x == w,
                    Side::Up => rp.y == h,
                    Side::Down => rp.y == 0,
                };
                assert!(on_expected_side, "{p} ({side}) under {r} gave {rp}");
            }
        }
    }

    #[test]
    fn mapping_finds_the_right_rotation() {
        for from in [Side::Left, Side::Right, Side::Up, Side::Down] {
            for to in [Side::Left, Side::Right, Side::Up, Side::Down] {
                let r = Rotation::mapping(from, to);
                assert_eq!(r.apply_side(from), to);
            }
        }
    }

    #[test]
    fn composition_and_inverse() {
        for a in Rotation::ALL {
            assert_eq!(a.then(a.inverse()), Rotation::R0);
            for b in Rotation::ALL {
                // Composition agrees with acting on sides sequentially.
                assert_eq!(
                    a.then(b).apply_side(Side::Left),
                    b.apply_side(a.apply_side(Side::Left))
                );
            }
        }
    }

    #[test]
    fn rotation_round_trip_on_points() {
        let size = (5, 3);
        for r in Rotation::ALL {
            let rsize = r.apply_size(size);
            for x in 0..=5 {
                for y in 0..=3 {
                    let p = Point::new(x, y);
                    let back = r.inverse().apply_point(r.apply_point(p, size), rsize);
                    assert_eq!(back, p, "round trip under {r}");
                }
            }
        }
    }
}
