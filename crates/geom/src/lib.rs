//! Integer-plane geometry substrate for the `netart` schematic diagram
//! generator.
//!
//! Schematic diagrams in the Koster & Stok (1989) generator live on an
//! integer grid: modules are axis-aligned rectangles, terminals are grid
//! points on module boundaries, and net paths are rectilinear chains of
//! axis-aligned segments. This crate provides those primitives:
//!
//! * [`Point`] — a grid coordinate,
//! * [`Rect`] — an axis-aligned rectangle given by its lower-left corner
//!   and size,
//! * [`Interval`] — a closed 1-D integer range,
//! * [`Segment`] — an axis-aligned segment on an integer track,
//! * [`Dir`] / [`Side`] / [`Axis`] — the four plane directions, module
//!   sides and the two axes,
//! * [`Rotation`] — the four right-angle module orientations.
//!
//! # Examples
//!
//! ```
//! use netart_geom::{Point, Rect, Segment};
//!
//! let module = Rect::new(Point::new(2, 3), 4, 2);
//! assert!(module.contains(Point::new(4, 4)));
//!
//! let wire = Segment::horizontal(5, 0, 10);
//! assert_eq!(wire.len(), 10);
//! assert!(wire.contains(Point::new(7, 5)));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod dir;
mod interval;
mod point;
mod rect;
mod rotation;
mod segment;

pub use dir::{Axis, Dir, Side};
pub use interval::Interval;
pub use point::Point;
pub use rect::Rect;
pub use rotation::Rotation;
pub use segment::Segment;
