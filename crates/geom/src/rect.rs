use std::fmt;

use crate::{Interval, Point, Segment, Side};

/// An axis-aligned rectangle given by its lower-left corner and size.
///
/// Modules, box bounding-boxes, partition bounding-boxes and the routing
/// plane itself are all rectangles. Width and height may be zero (a
/// degenerate rectangle still has a well-defined boundary), matching the
/// paper where system terminals are treated as zero-size obstacles.
///
/// # Examples
///
/// ```
/// use netart_geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(1, 2), 4, 3);
/// assert_eq!(r.upper_right(), Point::new(5, 5));
/// assert!(r.overlaps(&Rect::new(Point::new(4, 4), 2, 2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    origin: Point,
    width: i32,
    height: i32,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative.
    pub fn new(origin: Point, width: i32, height: i32) -> Self {
        assert!(width >= 0 && height >= 0, "negative rectangle size {width}x{height}");
        Rect { origin, width, height }
    }

    /// The smallest rectangle containing both corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        let origin = Point::new(a.x.min(b.x), a.y.min(b.y));
        Rect {
            origin,
            width: (a.x - b.x).abs(),
            height: (a.y - b.y).abs(),
        }
    }

    /// Lower-left corner.
    pub fn lower_left(&self) -> Point {
        self.origin
    }

    /// Upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.origin.x + self.width, self.origin.y + self.height)
    }

    /// Width (x extent).
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Height (y extent).
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The horizontal span `[left, right]`.
    pub fn x_span(&self) -> Interval {
        Interval::new(self.origin.x, self.origin.x + self.width)
    }

    /// The vertical span `[bottom, top]`.
    pub fn y_span(&self) -> Interval {
        Interval::new(self.origin.y, self.origin.y + self.height)
    }

    /// Geometric centre, rounded towards the lower-left.
    pub fn center(&self) -> Point {
        Point::new(self.origin.x + self.width / 2, self.origin.y + self.height / 2)
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// `true` when `p` lies strictly inside (not on the boundary).
    pub fn contains_strictly(&self, p: Point) -> bool {
        self.origin.x < p.x
            && p.x < self.origin.x + self.width
            && self.origin.y < p.y
            && p.y < self.origin.y + self.height
    }

    /// `true` when the closed rectangles share at least one point.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_span().overlaps(other.x_span()) && self.y_span().overlaps(other.y_span())
    }

    /// `true` when the rectangles intersect in more than a shared edge:
    /// touching boundaries do not count, while a degenerate rectangle
    /// (zero width or height) strictly overlaps when it reaches into the
    /// other's interior. The placement non-overlap postcondition uses
    /// this: two modules may share a boundary track but not interior
    /// area, and a system terminal (a point) may sit on a module edge but
    /// not inside it.
    pub fn overlaps_strictly(&self, other: &Rect) -> bool {
        self.origin.x < other.origin.x + other.width
            && other.origin.x < self.origin.x + self.width
            && self.origin.y < other.origin.y + other.height
            && other.origin.y < self.origin.y + self.height
    }

    /// The rectangle grown by `margin` tracks on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative `margin` would invert the rectangle.
    pub fn inflate(&self, margin: i32) -> Rect {
        Rect::new(
            Point::new(self.origin.x - margin, self.origin.y - margin),
            self.width + 2 * margin,
            self.height + 2 * margin,
        )
    }

    /// The rectangle translated by `delta`.
    pub fn translate(&self, delta: Point) -> Rect {
        Rect {
            origin: self.origin + delta,
            ..*self
        }
    }

    /// The smallest rectangle containing both.
    pub fn hull(&self, other: &Rect) -> Rect {
        let ll = Point::new(
            self.origin.x.min(other.origin.x),
            self.origin.y.min(other.origin.y),
        );
        let ur = Point::new(
            self.upper_right().x.max(other.upper_right().x),
            self.upper_right().y.max(other.upper_right().y),
        );
        Rect::from_corners(ll, ur)
    }

    /// The boundary edge on the given side, as a segment.
    ///
    /// `Left`/`Right` return vertical segments, `Up`/`Down` horizontal
    /// ones. These are exactly the obstacle segments a module contributes
    /// to the router (`ADD_OBSTACLE_BOUNDINGS` in the paper).
    pub fn edge(&self, side: Side) -> Segment {
        let ur = self.upper_right();
        match side {
            Side::Left => Segment::vertical(self.origin.x, self.origin.y, ur.y),
            Side::Right => Segment::vertical(ur.x, self.origin.y, ur.y),
            Side::Down => Segment::horizontal(self.origin.y, self.origin.x, ur.x),
            Side::Up => Segment::horizontal(ur.y, self.origin.x, ur.x),
        }
    }

    /// All four boundary edges in `[left, right, down, up]` order.
    pub fn edges(&self) -> [Segment; 4] {
        [
            self.edge(Side::Left),
            self.edge(Side::Right),
            self.edge(Side::Down),
            self.edge(Side::Up),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}x{}", self.origin, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_spans() {
        let r = Rect::new(Point::new(-2, 1), 5, 4);
        assert_eq!(r.lower_left(), Point::new(-2, 1));
        assert_eq!(r.upper_right(), Point::new(3, 5));
        assert_eq!(r.x_span(), Interval::new(-2, 3));
        assert_eq!(r.y_span(), Interval::new(1, 5));
        assert_eq!(r.center(), Point::new(0, 3));
    }

    #[test]
    fn from_corners_normalises() {
        let r = Rect::from_corners(Point::new(4, 7), Point::new(1, 2));
        assert_eq!(r, Rect::new(Point::new(1, 2), 3, 5));
    }

    #[test]
    fn containment() {
        let r = Rect::new(Point::new(0, 0), 4, 4);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(4, 4)));
        assert!(!r.contains(Point::new(5, 2)));
        assert!(!r.contains_strictly(Point::new(0, 2)));
        assert!(r.contains_strictly(Point::new(1, 1)));
    }

    #[test]
    fn overlap_vs_strict_overlap() {
        let a = Rect::new(Point::new(0, 0), 4, 4);
        let touching = Rect::new(Point::new(4, 0), 3, 3);
        assert!(a.overlaps(&touching));
        assert!(!a.overlaps_strictly(&touching));
        let inside = Rect::new(Point::new(1, 1), 1, 1);
        assert!(a.overlaps_strictly(&inside));
        let away = Rect::new(Point::new(9, 9), 1, 1);
        assert!(!a.overlaps(&away));
    }

    #[test]
    fn zero_size_rect_behaves_like_a_point() {
        let p = Rect::new(Point::new(3, 3), 0, 0);
        assert!(p.contains(Point::new(3, 3)));
        assert!(!p.contains(Point::new(3, 4)));
        let a = Rect::new(Point::new(0, 0), 4, 4);
        assert!(a.overlaps(&p));
        // A point in the interior of `a` strictly overlaps it...
        assert!(a.overlaps_strictly(&p));
        // ...but a point on the boundary does not.
        let edge = Rect::new(Point::new(0, 2), 0, 0);
        assert!(!a.overlaps_strictly(&edge));
    }

    #[test]
    fn inflate_translate_hull() {
        let r = Rect::new(Point::new(2, 2), 2, 2);
        assert_eq!(r.inflate(1), Rect::new(Point::new(1, 1), 4, 4));
        assert_eq!(r.translate(Point::new(-2, 3)), Rect::new(Point::new(0, 5), 2, 2));
        let h = r.hull(&Rect::new(Point::new(10, 0), 1, 1));
        assert_eq!(h, Rect::from_corners(Point::new(2, 0), Point::new(11, 4)));
    }

    #[test]
    fn edges_bound_the_rectangle() {
        let r = Rect::new(Point::new(1, 2), 3, 4);
        assert_eq!(r.edge(Side::Left), Segment::vertical(1, 2, 6));
        assert_eq!(r.edge(Side::Right), Segment::vertical(4, 2, 6));
        assert_eq!(r.edge(Side::Down), Segment::horizontal(2, 1, 4));
        assert_eq!(r.edge(Side::Up), Segment::horizontal(6, 1, 4));
        assert_eq!(r.edges().len(), 4);
    }
}
