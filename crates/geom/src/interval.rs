use std::fmt;

/// A closed 1-D integer range `[lo, hi]` with `lo <= hi`.
///
/// Intervals are the workhorse of the line-expansion router: the swept
/// range of an active segment is split against obstacle intervals track
/// by track.
///
/// # Examples
///
/// ```
/// use netart_geom::Interval;
///
/// let a = Interval::new(0, 10);
/// let b = Interval::new(4, 6);
/// assert_eq!(a.intersect(b), Some(b));
/// assert_eq!(a.subtract(b), (Some(Interval::new(0, 3)), Some(Interval::new(7, 10))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: i32,
    hi: i32,
}

impl Interval {
    /// Creates the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i32, hi: i32) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval containing a single value.
    pub fn point(v: i32) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Lower bound (inclusive).
    pub fn lo(self) -> i32 {
        self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(self) -> i32 {
        self.hi
    }

    /// Number of integer points spanned minus one (`hi - lo`).
    ///
    /// This matches wire length on a grid: a segment covering `[a, b]`
    /// has length `b - a`. A closed interval is never empty, so there
    /// is deliberately no `is_empty`; see [`Interval::is_point`].
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u32 {
        self.hi.abs_diff(self.lo)
    }

    /// `true` when the interval is a single point.
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// `true` when `v` lies within the interval.
    pub fn contains(self, v: i32) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when `other` lies entirely within `self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` when the two closed intervals share at least one point.
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The common part of two intervals, if any.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Removes `other` from `self`, returning the (possibly empty) parts
    /// left of and right of `other`.
    ///
    /// This is the splitting step of `EXPAND_SEGMENT`: when a swept range
    /// meets an obstacle, the overlap is cut out and the remaining pieces
    /// keep sweeping.
    pub fn subtract(self, other: Interval) -> (Option<Interval>, Option<Interval>) {
        if !self.overlaps(other) {
            return (Some(self), None);
        }
        let left = (self.lo < other.lo).then(|| Interval::new(self.lo, other.lo - 1));
        let right = (self.hi > other.hi).then(|| Interval::new(other.hi + 1, self.hi));
        (left, right)
    }

    /// The smallest interval containing both.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps `v` into the interval.
    pub fn clamp(self, v: i32) -> i32 {
        v.clamp(self.lo, self.hi)
    }

    /// Iterates over the integer points of the interval in order.
    pub fn iter(self) -> impl Iterator<Item = i32> {
        self.lo..=self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_inverted_bounds() {
        let _ = Interval::new(3, 2);
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(5);
        assert!(p.is_point());
        assert_eq!(p.len(), 0);
        assert!(p.contains(5));
        assert!(!p.contains(4));
    }

    #[test]
    fn overlap_cases() {
        let a = Interval::new(0, 5);
        assert!(a.overlaps(Interval::new(5, 9))); // touch at endpoint
        assert!(a.overlaps(Interval::new(-3, 0)));
        assert!(!a.overlaps(Interval::new(6, 9)));
        assert!(a.overlaps(Interval::new(2, 3)));
    }

    #[test]
    fn intersect_cases() {
        let a = Interval::new(0, 10);
        assert_eq!(a.intersect(Interval::new(5, 20)), Some(Interval::new(5, 10)));
        assert_eq!(a.intersect(Interval::new(11, 20)), None);
        assert_eq!(a.intersect(a), Some(a));
    }

    #[test]
    fn subtract_middle_splits_in_two() {
        let a = Interval::new(0, 10);
        let (l, r) = a.subtract(Interval::new(4, 6));
        assert_eq!(l, Some(Interval::new(0, 3)));
        assert_eq!(r, Some(Interval::new(7, 10)));
    }

    #[test]
    fn subtract_edge_and_cover() {
        let a = Interval::new(0, 10);
        assert_eq!(a.subtract(Interval::new(0, 4)), (None, Some(Interval::new(5, 10))));
        assert_eq!(a.subtract(Interval::new(7, 10)), (Some(Interval::new(0, 6)), None));
        assert_eq!(a.subtract(Interval::new(-5, 15)), (None, None));
        assert_eq!(a.subtract(Interval::new(20, 30)), (Some(a), None));
    }

    #[test]
    fn hull_and_clamp() {
        let a = Interval::new(2, 4);
        let b = Interval::new(8, 9);
        assert_eq!(a.hull(b), Interval::new(2, 9));
        assert_eq!(a.clamp(0), 2);
        assert_eq!(a.clamp(9), 4);
        assert_eq!(a.clamp(3), 3);
    }

    #[test]
    fn iteration_order() {
        let pts: Vec<i32> = Interval::new(-1, 2).iter().collect();
        assert_eq!(pts, vec![-1, 0, 1, 2]);
    }
}
