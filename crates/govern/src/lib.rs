//! The resource governor: a cheap, thread-safe byte budget shared by
//! parsers, builders and the serve front.
//!
//! Machine-generated netlists are thousands of times larger than the
//! hand-typed 1989 appendix files, and the first thing a huge (or
//! hostile) input does to a resident process is exhaust its memory.
//! [`MemBudget`] makes every growth site *ask first*: callers charge
//! the bytes they are about to allocate with [`MemBudget::try_charge`]
//! and release them when the data is dropped. A refusal carries the
//! exact byte counts ([`Exhausted`]) so it can surface as a diagnostic
//! instead of an abort — the same discipline the smt-log-parser uses
//! (`try_reserve` before every push) to survive multi-gigabyte inputs.
//!
//! The budget is deliberately simple: one atomic counter against one
//! limit. It does not track allocator overhead or fragmentation; call
//! sites charge a documented estimate of the bytes they keep, which is
//! enough to bound the process within a constant factor.
//!
//! # Examples
//!
//! ```
//! use netart_govern::{MemBudget, TryPush};
//!
//! let budget = MemBudget::bytes(1024);
//! let mut v: Vec<u64> = Vec::new();
//! v.try_push(&budget, "example", 0, 7).unwrap();
//! assert_eq!(budget.used(), 8);
//!
//! let tiny = MemBudget::bytes(4);
//! let err = v.try_push(&tiny, "example", 0, 8).unwrap_err();
//! assert_eq!(err.requested, 8);
//! assert_eq!(err.limit, 4);
//! assert_eq!(v.len(), 1); // nothing was pushed
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, thread-safe byte budget.
///
/// Cloneable only through [`Arc`]; every component that should be
/// governed together (parser, builder, serve admission) holds the same
/// instance, so one request cannot starve the process by splitting its
/// allocations across stages.
#[derive(Debug)]
pub struct MemBudget {
    limit: u64,
    used: AtomicU64,
}

impl Default for MemBudget {
    fn default() -> Self {
        MemBudget::unlimited()
    }
}

impl MemBudget {
    /// A budget that never refuses (limit `u64::MAX`). Charging is
    /// still accounted, so [`MemBudget::used`] stays meaningful.
    pub fn unlimited() -> Self {
        MemBudget::bytes(u64::MAX)
    }

    /// A budget of `limit` bytes. A limit of zero refuses every
    /// non-empty charge.
    pub fn bytes(limit: u64) -> Self {
        MemBudget {
            limit,
            used: AtomicU64::new(0),
        }
    }

    /// Whether this budget can ever refuse a charge.
    pub fn is_unlimited(&self) -> bool {
        self.limit == u64::MAX
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available before the limit.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.used())
    }

    /// Accounts `bytes` against the budget, or refuses without
    /// charging anything. Never overshoots: a refused charge leaves
    /// the counter untouched, even under contention.
    ///
    /// # Errors
    ///
    /// [`Exhausted`] with the exact byte counts when the charge would
    /// exceed the limit.
    pub fn try_charge(&self, stage: &'static str, bytes: u64) -> Result<(), Exhausted> {
        self.used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                used.checked_add(bytes).filter(|&n| n <= self.limit)
            })
            .map(|_| ())
            .map_err(|used| Exhausted {
                stage,
                requested: bytes,
                used,
                limit: self.limit,
            })
    }

    /// Returns `bytes` to the budget. Saturates at zero so a
    /// double-release cannot poison the counter (it would only make
    /// the budget *more* permissive, never wedge it shut).
    pub fn release(&self, bytes: u64) {
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                Some(used.saturating_sub(bytes))
            });
    }

    /// Charges `bytes` and returns a guard that releases them on
    /// drop — the idiom for request-scoped charges (serve admission).
    ///
    /// # Errors
    ///
    /// [`Exhausted`] when the charge would exceed the limit.
    pub fn lease(self: &Arc<Self>, stage: &'static str, bytes: u64) -> Result<Lease, Exhausted> {
        self.try_charge(stage, bytes)?;
        Ok(Lease {
            budget: Arc::clone(self),
            bytes,
        })
    }
}

/// A request-scoped charge; returns its bytes to the budget on drop.
#[derive(Debug)]
pub struct Lease {
    budget: Arc<MemBudget>,
    bytes: u64,
}

impl Lease {
    /// The bytes held by this lease.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// A refused charge, carrying the exact byte counts for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Which ingestion stage asked for the allocation.
    pub stage: &'static str,
    /// Bytes the stage asked for.
    pub requested: u64,
    /// Bytes already charged when the request arrived.
    pub used: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exhausted in {}: needed {} byte(s) with {} of {} already charged",
            self.stage, self.requested, self.used, self.limit
        )
    }
}

impl Error for Exhausted {}

/// Allocation-checked growth: charge first, push only on success.
pub trait TryPush<T> {
    /// Charges the element's inline size plus `deep` (its owned heap
    /// bytes — string contents, nested buffers) against `budget`, then
    /// pushes. On refusal the container is untouched.
    ///
    /// # Errors
    ///
    /// [`Exhausted`] when the charge would exceed the limit.
    fn try_push(
        &mut self,
        budget: &MemBudget,
        stage: &'static str,
        deep: u64,
        value: T,
    ) -> Result<(), Exhausted>;
}

impl<T> TryPush<T> for Vec<T> {
    fn try_push(
        &mut self,
        budget: &MemBudget,
        stage: &'static str,
        deep: u64,
        value: T,
    ) -> Result<(), Exhausted> {
        budget.try_charge(stage, std::mem::size_of::<T>() as u64 + deep)?;
        self.push(value);
        Ok(())
    }
}

/// The heap bytes owned by a string — what a charge for keeping it
/// should cover beyond the inline `String` struct.
pub fn str_cost(s: &str) -> u64 {
    s.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_round_trip() {
        let b = MemBudget::bytes(100);
        b.try_charge("t", 60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.remaining(), 40);
        b.try_charge("t", 40).unwrap();
        assert_eq!(b.remaining(), 0);
        b.release(100);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn refusal_reports_exact_counts_and_charges_nothing() {
        let b = MemBudget::bytes(100);
        b.try_charge("setup", 90).unwrap();
        let e = b.try_charge("grow", 20).unwrap_err();
        assert_eq!(e.stage, "grow");
        assert_eq!(e.requested, 20);
        assert_eq!(e.used, 90);
        assert_eq!(e.limit, 100);
        assert_eq!(b.used(), 90, "failed charge must not stick");
        assert!(e.to_string().contains("needed 20 byte(s)"), "{e}");
    }

    #[test]
    fn unlimited_never_refuses_but_still_accounts() {
        let b = MemBudget::unlimited();
        assert!(b.is_unlimited());
        b.try_charge("t", u64::MAX / 2).unwrap();
        assert_eq!(b.used(), u64::MAX / 2);
    }

    #[test]
    fn overflow_is_a_refusal_not_a_wrap() {
        let b = MemBudget::unlimited();
        b.try_charge("t", u64::MAX - 1).unwrap();
        assert!(b.try_charge("t", 2).is_err());
    }

    #[test]
    fn release_saturates_at_zero() {
        let b = MemBudget::bytes(10);
        b.try_charge("t", 5).unwrap();
        b.release(50);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn lease_releases_on_drop() {
        let b = Arc::new(MemBudget::bytes(100));
        let lease = b.lease("req", 64).unwrap();
        assert_eq!(lease.bytes(), 64);
        assert_eq!(b.used(), 64);
        assert!(b.lease("req", 64).is_err());
        drop(lease);
        assert_eq!(b.used(), 0);
        b.lease("req", 64).unwrap();
    }

    #[test]
    fn try_push_charges_inline_plus_deep() {
        let b = MemBudget::bytes(1024);
        let mut v: Vec<String> = Vec::new();
        let s = "hello".to_owned();
        let deep = str_cost(&s);
        v.try_push(&b, "t", deep, s).unwrap();
        assert_eq!(b.used(), std::mem::size_of::<String>() as u64 + 5);
    }

    #[test]
    fn try_push_refusal_leaves_vec_untouched() {
        let b = MemBudget::bytes(1);
        let mut v: Vec<u64> = vec![1];
        assert!(v.try_push(&b, "t", 0, 2).is_err());
        assert_eq!(v, [1]);
    }

    #[test]
    fn concurrent_charges_never_exceed_limit() {
        let b = Arc::new(MemBudget::bytes(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut granted = 0u64;
                for _ in 0..1000 {
                    if b.try_charge("t", 1).is_ok() {
                        granted += 1;
                    }
                }
                granted
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().expect("join")).sum();
        assert_eq!(total, 1000, "exactly the limit must be granted");
        assert_eq!(b.used(), 1000);
    }
}
