//! Property-based tests for the path metrics: the unit-edge graph
//! semantics must be stable under segment representation changes.

use proptest::prelude::*;

use netart_diagram::NetPath;
use netart_geom::{Axis, Interval, Point, Segment};

fn segment_strategy() -> impl Strategy<Value = Segment> {
    (
        prop::sample::select(vec![Axis::Horizontal, Axis::Vertical]),
        -20i32..20,
        -20i32..20,
        0i32..10,
    )
        .prop_map(|(axis, track, lo, len)| {
            Segment::on_axis(axis, track, Interval::new(lo, lo + len))
        })
}

fn path_strategy() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(segment_strategy(), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metrics are invariant under segment order.
    #[test]
    fn metrics_are_order_independent(mut segs in path_strategy()) {
        let a = NetPath::from_segments(segs.clone());
        segs.reverse();
        let b = NetPath::from_segments(segs);
        prop_assert_eq!(a.length(), b.length());
        prop_assert_eq!(a.bends(), b.bends());
        prop_assert_eq!(a.branch_points(), b.branch_points());
        prop_assert_eq!(a.is_tree(), b.is_tree());
    }

    /// Metrics are invariant under duplicating a segment (the
    /// unit-edge graph deduplicates).
    #[test]
    fn metrics_ignore_duplicates(segs in path_strategy()) {
        let a = NetPath::from_segments(segs.clone());
        let mut doubled = segs.clone();
        doubled.extend(segs);
        let b = NetPath::from_segments(doubled);
        prop_assert_eq!(a.length(), b.length());
        prop_assert_eq!(a.bends(), b.bends());
        prop_assert_eq!(a.branch_points(), b.branch_points());
    }

    /// Splitting a segment in two never changes any metric.
    #[test]
    fn metrics_survive_splitting(seg in segment_strategy(), cut in 0i32..10) {
        let span = seg.span();
        let whole = NetPath::from_segments(vec![seg]);
        let cut = span.lo() + cut.min(span.len() as i32);
        let halves = NetPath::from_segments(vec![
            Segment::on_axis(seg.axis(), seg.track(), Interval::new(span.lo(), cut)),
            Segment::on_axis(seg.axis(), seg.track(), Interval::new(cut, span.hi())),
        ]);
        prop_assert_eq!(whole.length(), halves.length());
        prop_assert_eq!(whole.bends(), halves.bends());
        prop_assert_eq!(whole.branch_points(), halves.branch_points());
    }

    /// Crossing detection is symmetric, and crossing points lie on both
    /// paths.
    #[test]
    fn crossings_symmetric(a in path_strategy(), b in path_strategy()) {
        let pa = NetPath::from_segments(a);
        let pb = NetPath::from_segments(b);
        let xab = pa.crossings_with(&pb);
        let xba = pb.crossings_with(&pa);
        prop_assert_eq!(xab.clone(), xba);
        for p in xab {
            prop_assert!(pa.contains(p));
            prop_assert!(pb.contains(p));
        }
    }

    /// A connected single segment is always a tree connecting its
    /// endpoints.
    #[test]
    fn single_segment_is_a_tree(seg in segment_strategy()) {
        let p = NetPath::from_segments(vec![seg]);
        let (a, b) = seg.endpoints();
        prop_assert!(p.is_tree());
        prop_assert!(p.connects(&[a, b]));
        prop_assert_eq!(p.length(), seg.len());
        prop_assert_eq!(p.bends(), 0);
    }

    /// An L of two touching perpendicular segments has exactly one bend
    /// (or zero when either leg is degenerate).
    #[test]
    fn l_shape_bend_count(x in -10i32..10, y in -10i32..10, dx in 0i32..8, dy in 0i32..8) {
        let h = Segment::horizontal(y, x, x + dx);
        let v = Segment::vertical(x + dx, y, y + dy);
        let p = NetPath::from_segments(vec![h, v]);
        let expected = u32::from(dx > 0 && dy > 0);
        prop_assert_eq!(p.bends(), expected, "{:?}", p.segments());
        prop_assert!(p.connects(&[Point::new(x, y), Point::new(x + dx, y + dy)]));
    }
}
