//! SVG rendering of schematic diagrams.
//!
//! The paper's figures 6.1–6.7 are plots of generated diagrams; this
//! module produces the equivalent artwork as standalone SVG so results
//! can be inspected visually. Modules render as labelled rectangles,
//! terminals as dots, nets as polylines (one colour per net, cycling
//! through a small palette).

use std::fmt::Write as _;

use netart_geom::Axis;

use crate::Diagram;

/// Pixels per grid track.
const SCALE: i32 = 12;
/// Margin around the drawing, in tracks.
const MARGIN: i32 = 3;

const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// Renders a diagram as a standalone SVG document with the placement
/// structure overlaid: dashed bounding boxes around every partition
/// and every box, the visual of the paper's figures 4.2–4.5.
///
/// Diagrams without an attached [`crate::PlacementStructure`] (hand
/// placements, baseline placers) render exactly like [`render`].
pub fn render_with_structure(diagram: &Diagram) -> String {
    let base = render(diagram);
    let Some(structure) = diagram.placement().structure() else {
        return base;
    };
    let network = diagram.network();
    let placement = diagram.placement();
    let bb = placement.bounding_box(network);
    let (min, max) = match bb {
        Some(bb) => (
            bb.lower_left() + netart_geom::Point::new(-MARGIN, -MARGIN),
            bb.upper_right() + netart_geom::Point::new(MARGIN, MARGIN),
        ),
        None => return base,
    };
    let fx = |x: i32| (x - min.x) * SCALE;
    let fy = |y: i32| (max.y - y) * SCALE;

    let mut overlay = String::new();
    let hull = |modules: &[netart_netlist::ModuleId]| -> Option<netart_geom::Rect> {
        modules
            .iter()
            .filter(|m| placement.module(**m).is_some())
            .map(|&m| placement.module_rect(network, m))
            .reduce(|a, b| a.hull(&b))
    };
    for part in &structure.partitions {
        for string in part {
            if let Some(r) = hull(string) {
                let r = r.inflate(1);
                let _ = writeln!(
                    overlay,
                    r##"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="#999999" stroke-width="1" stroke-dasharray="3,3"/>"##,
                    fx(r.lower_left().x),
                    fy(r.upper_right().y),
                    r.width() * SCALE,
                    r.height() * SCALE
                );
            }
        }
        let all: Vec<netart_netlist::ModuleId> = part.iter().flatten().copied().collect();
        if let Some(r) = hull(&all) {
            let r = r.inflate(2);
            let _ = writeln!(
                overlay,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="none" stroke="#555555" stroke-width="1.5" stroke-dasharray="7,4"/>"##,
                fx(r.lower_left().x),
                fy(r.upper_right().y),
                r.width() * SCALE,
                r.height() * SCALE
            );
        }
    }
    base.replace("</svg>\n", &format!("{overlay}</svg>\n"))
}

/// Renders a diagram as a standalone SVG document.
///
/// Unplaced items are skipped. Unrouted nets simply do not appear, as
/// in the paper's plots of partially routed diagrams — unless the
/// salvage cascade left a [`crate::GhostWire`], which is drawn as a
/// dashed gray line so the missing connection stays visible.
pub fn render(diagram: &Diagram) -> String {
    let network = diagram.network();
    let placement = diagram.placement();
    let bb = placement.bounding_box(network);
    let (min, max) = match bb {
        Some(bb) => (
            bb.lower_left() + netart_geom::Point::new(-MARGIN, -MARGIN),
            bb.upper_right() + netart_geom::Point::new(MARGIN, MARGIN),
        ),
        None => (netart_geom::Point::ORIGIN, netart_geom::Point::new(10, 10)),
    };
    let width = (max.x - min.x) * SCALE;
    let height = (max.y - min.y) * SCALE;
    // SVG y grows downwards; flip so diagram y grows upwards.
    let fx = |x: i32| (x - min.x) * SCALE;
    let fy = |y: i32| (max.y - y) * SCALE;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Nets first so modules draw over them at boundaries.
    for (i, (n, path)) in diagram.routes().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let name = network.net(n).name();
        for seg in path.segments() {
            let (a, b) = seg.endpoints();
            let _ = writeln!(
                out,
                r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{color}" stroke-width="2"><title>{name}</title></line>"#,
                fx(a.x),
                fy(a.y),
                fx(b.x),
                fy(b.y)
            );
        }
    }

    // Ghost wires: dashed gray placeholders for unroutable nets.
    for (n, ghost) in diagram.ghosts() {
        let name = network.net(n).name();
        for &(a, b) in &ghost.lines {
            let _ = writeln!(
                out,
                r##"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="#aaaaaa" stroke-width="1.5" stroke-dasharray="5,4"><title>{name} (unrouted)</title></line>"##,
                fx(a.x),
                fy(a.y),
                fx(b.x),
                fy(b.y)
            );
        }
    }

    for m in network.modules() {
        if placement.module(m).is_none() {
            continue;
        }
        let r = placement.module_rect(network, m);
        let _ = writeln!(
            out,
            r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#f5f5f0" stroke="black" stroke-width="2"/>"##,
            fx(r.lower_left().x),
            fy(r.upper_right().y),
            r.width() * SCALE,
            r.height() * SCALE
        );
        let c = r.center();
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}" font-family="monospace" font-size="10" text-anchor="middle">{}</text>"#,
            fx(c.x),
            fy(c.y) + 3,
            network.instance(m).name()
        );
        let tpl = network.template_of(m);
        for t in 0..tpl.terminal_count() {
            let p = placement.terminal_position(network, m, t);
            let _ = writeln!(
                out,
                r#"<circle cx="{}" cy="{}" r="2.5" fill="black"><title>{}.{}</title></circle>"#,
                fx(p.x),
                fy(p.y),
                network.instance(m).name(),
                tpl.terminals()[t].name()
            );
        }
    }

    for st in network.system_terms() {
        if let Some(p) = placement.system_term(st) {
            let _ = writeln!(
                out,
                r#"<rect x="{}" y="{}" width="8" height="8" fill="white" stroke="black" stroke-width="1.5"/>"#,
                fx(p.x) - 4,
                fy(p.y) - 4
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="monospace" font-size="9" text-anchor="middle">{}</text>"#,
                fx(p.x),
                fy(p.y) - 7,
                network.system_term(st).name()
            );
        }
    }

    out.push_str("</svg>\n");
    debug_assert!(sanity(&out));
    out
}

/// Very light structural sanity used by debug assertions and tests.
fn sanity(svg: &str) -> bool {
    svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>")
}

/// Counts the drawn wire segments, exposed for tests.
pub fn wire_segment_count(svg: &str) -> usize {
    svg.matches("<line ").count()
}

/// Orientation statistics over drawn wires `(horizontal, vertical)`,
/// exposed for tests: every wire must be axis-aligned.
pub fn wire_orientations(diagram: &Diagram) -> (usize, usize) {
    let mut h = 0;
    let mut v = 0;
    for (_, path) in diagram.routes() {
        for seg in path.segments() {
            match seg.axis() {
                Axis::Horizontal => h += 1,
                Axis::Vertical => v += 1,
            }
        }
    }
    (h, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetPath, Placement};
    use netart_geom::{Point, Rotation, Segment};
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn diagram() -> Diagram {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("io", TermType::In).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect("m", st).unwrap();
        b.connect_pin("m", u0, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(8, 0), Rotation::R0);
        placement.place_system_term(st, Point::new(-2, 1));
        let mut d = Diagram::new(network, placement);
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        d
    }

    #[test]
    fn renders_valid_svg_with_all_elements() {
        let d = diagram();
        let svg = render(&d);
        assert!(sanity(&svg));
        assert_eq!(svg.matches("<rect ").count(), 2 + 1 + 1); // bg + 2 modules + 1 terminal
        assert_eq!(wire_segment_count(&svg), 1);
        assert!(svg.contains(">u0<"));
        assert!(svg.contains(">io<"));
    }

    #[test]
    fn empty_placement_still_renders() {
        let d = diagram();
        let (net, _, _) = d.into_parts();
        let empty = Diagram::new(net.clone(), Placement::new(&net));
        let svg = render(&empty);
        assert!(sanity(&svg));
        assert_eq!(wire_segment_count(&svg), 0);
    }

    #[test]
    fn orientation_stats() {
        let d = diagram();
        assert_eq!(wire_orientations(&d), (1, 0));
    }

    #[test]
    fn ghost_wires_render_dashed() {
        let mut d = diagram();
        let m = d.network().net_by_name("m").unwrap();
        d.set_ghost(
            m,
            crate::GhostWire {
                lines: vec![(Point::new(-2, 1), Point::new(0, 1))],
            },
        );
        let svg = render(&d);
        assert!(sanity(&svg));
        assert_eq!(wire_segment_count(&svg), 2, "real wire + ghost line");
        assert_eq!(svg.matches(r##"stroke="#aaaaaa""##).count(), 1);
        assert!(svg.contains("m (unrouted)"));
    }

    #[test]
    fn structure_overlay_adds_dashed_boxes() {
        let mut d = diagram();
        // Without a structure the overlay renderer matches the plain one.
        assert_eq!(render_with_structure(&d), render(&d));
        let ms: Vec<netart_netlist::ModuleId> = d.network().modules().collect();
        d.placement_mut().set_structure(crate::PlacementStructure {
            partitions: vec![vec![vec![ms[0]]], vec![vec![ms[1]]]],
        });
        let svg = render_with_structure(&d);
        assert!(sanity(&svg));
        assert_eq!(svg.matches("stroke-dasharray").count(), 4, "{svg}");
    }
}
