//! An ESCHER-style diagram interchange format (Appendix D analogue).
//!
//! The original generator wrote diagrams for the closed ESCHER schematic
//! editor as `#TUE-ES-871` record files. We reproduce the *shape* of
//! that format — a header, template metadata, one `subsys:` record per
//! placed module and `node:` records for the net geometry — in a
//! self-describing textual form that round-trips through
//! [`write_diagram`] / [`parse_diagram`].
//!
//! The records written are:
//!
//! ```text
//! #TUE-ES-871
//! tname: <diagram name>
//! repr: <min-x> <min-y> <max-x> <max-y>
//! subsys: <instance> <template> <x> <y> <rotation>
//! contact: <system terminal> <type> <x> <y>
//! node: <net> <axis> <track> <lo> <hi>
//! ```
//!
//! Coordinates are on the generator's track grid (the Appendix D format
//! used the 10× editor grid; see [`crate::escher`]'s quinto counterpart
//! for the scaling convention).

use netart_geom::{Axis, Point, Rect, Rotation, Segment};
use netart_netlist::{Network, ParseError};

use crate::{Diagram, Placement};

/// The magic first line, kept from the original format.
pub const HEADER: &str = "#TUE-ES-871";

/// Serialises a diagram to the ESCHER-style record format.
pub fn write_diagram(name: &str, diagram: &Diagram) -> String {
    let network = diagram.network();
    let placement = diagram.placement();
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("tname: {name}\n"));
    let bb = placement
        .bounding_box(network)
        .unwrap_or_else(|| Rect::new(Point::ORIGIN, 0, 0));
    out.push_str(&format!(
        "repr: {} {} {} {}\n",
        bb.lower_left().x,
        bb.lower_left().y,
        bb.upper_right().x,
        bb.upper_right().y
    ));
    for m in network.modules() {
        if let Some(placed) = placement.module(m) {
            out.push_str(&format!(
                "subsys: {} {} {} {} {}\n",
                network.instance(m).name(),
                network.template_of(m).name(),
                placed.position.x,
                placed.position.y,
                placed.rotation
            ));
        }
    }
    for st in network.system_terms() {
        if let Some(p) = placement.system_term(st) {
            let t = network.system_term(st);
            out.push_str(&format!("contact: {} {} {} {}\n", t.name(), t.ty(), p.x, p.y));
        }
    }
    for (n, path) in diagram.routes() {
        let name = network.net(n).name();
        for seg in path.segments() {
            let axis = match seg.axis() {
                Axis::Horizontal => "h",
                Axis::Vertical => "v",
            };
            out.push_str(&format!(
                "node: {} {} {} {} {}\n",
                name,
                axis,
                seg.track(),
                seg.span().lo(),
                seg.span().hi()
            ));
        }
    }
    out
}

/// Parses an ESCHER-style file back into a diagram over `network`.
///
/// The network must contain every instance, terminal and net the file
/// mentions; placement and routes are taken from the file.
///
/// # Errors
///
/// Returns a [`ParseError`] for missing headers, malformed records, or
/// names unknown to `network`.
pub fn parse_diagram(network: Network, src: &str) -> Result<Diagram, ParseError> {
    let mut lines = src.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    match lines.next() {
        Some((_, h)) if h == HEADER => {}
        _ => return Err(ParseError::new(1, format!("missing `{HEADER}` header"))),
    }

    let mut placement = Placement::new(&network);
    let mut routes: Vec<(usize, String, Segment)> = Vec::new();

    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let Some((kind, rest)) = line.split_once(':') else {
            return Err(ParseError::new(lineno, format!("malformed record `{line}`")));
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let int = |s: &str| -> Result<i32, ParseError> {
            s.parse()
                .map_err(|_| ParseError::new(lineno, format!("`{s}` is not an integer")))
        };
        match kind {
            "tname" | "repr" => {} // metadata, informational only
            "subsys" => {
                let [inst, _tpl, x, y, rot] = fields[..] else {
                    return Err(ParseError::new(lineno, "subsys record needs 5 fields"));
                };
                let m = network.module_by_name(inst).ok_or_else(|| {
                    ParseError::new(lineno, format!("unknown instance `{inst}`"))
                })?;
                if placement.module(m).is_some() {
                    return Err(ParseError::new(
                        lineno,
                        format!("duplicate subsys record for instance `{inst}`"),
                    ));
                }
                let rotation = match rot {
                    "0" => Rotation::R0,
                    "90" => Rotation::R90,
                    "180" => Rotation::R180,
                    "270" => Rotation::R270,
                    other => {
                        return Err(ParseError::new(lineno, format!("bad rotation `{other}`")))
                    }
                };
                placement.place_module(m, Point::new(int(x)?, int(y)?), rotation);
            }
            "contact" => {
                let [name, _ty, x, y] = fields[..] else {
                    return Err(ParseError::new(lineno, "contact record needs 4 fields"));
                };
                let st = network.system_term_by_name(name).ok_or_else(|| {
                    ParseError::new(lineno, format!("unknown system terminal `{name}`"))
                })?;
                if placement.system_term(st).is_some() {
                    return Err(ParseError::new(
                        lineno,
                        format!("duplicate contact record for terminal `{name}`"),
                    ));
                }
                placement.place_system_term(st, Point::new(int(x)?, int(y)?));
            }
            "node" => {
                let [net, axis, track, lo, hi] = fields[..] else {
                    return Err(ParseError::new(lineno, "node record needs 5 fields"));
                };
                let seg = match axis {
                    "h" => Segment::horizontal(int(track)?, int(lo)?, int(hi)?),
                    "v" => Segment::vertical(int(track)?, int(lo)?, int(hi)?),
                    other => return Err(ParseError::new(lineno, format!("bad axis `{other}`"))),
                };
                routes.push((lineno, net.to_owned(), seg));
            }
            other => {
                return Err(ParseError::new(lineno, format!("unknown record kind `{other}`")))
            }
        }
    }

    let mut diagram = Diagram::new(network, placement);
    for (lineno, net_name, seg) in routes {
        let n = diagram
            .network()
            .net_by_name(&net_name)
            .ok_or_else(|| ParseError::new(lineno, format!("unknown net `{net_name}`")))?;
        let mut path = diagram.clear_route(n).unwrap_or_default();
        path.push(seg);
        diagram.set_route(n, path);
    }
    Ok(diagram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetPath;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn diagram() -> Diagram {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("io", TermType::In).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect("m", st).unwrap();
        b.connect_pin("m", u0, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(8, 0), Rotation::R180);
        placement.place_system_term(st, Point::new(-2, 1));
        let mut d = Diagram::new(network, placement);
        d.set_route(
            n,
            NetPath::from_segments(vec![
                Segment::horizontal(1, 4, 6),
                Segment::vertical(6, 1, 3),
            ]),
        );
        d
    }

    #[test]
    fn write_contains_all_records() {
        let d = diagram();
        let s = write_diagram("test", &d);
        assert!(s.starts_with(HEADER));
        assert!(s.contains("tname: test"));
        assert!(s.contains("subsys: u0 gate 0 0 0"));
        assert!(s.contains("subsys: u1 gate 8 0 180"));
        assert!(s.contains("contact: io in -2 1"));
        assert!(s.contains("node: n h 1 4 6"));
        assert!(s.contains("node: n v 6 1 3"));
    }

    #[test]
    fn round_trip() {
        let d = diagram();
        let s = write_diagram("test", &d);
        let d2 = parse_diagram(d.network().clone(), &s).unwrap();
        let network = d.network();
        for m in network.modules() {
            assert_eq!(d.placement().module(m), d2.placement().module(m));
        }
        for st in network.system_terms() {
            assert_eq!(d.placement().system_term(st), d2.placement().system_term(st));
        }
        let n = network.net_by_name("n").unwrap();
        assert_eq!(d.route(n).unwrap().segments(), d2.route(n).unwrap().segments());
        assert!(d2.route(network.net_by_name("m").unwrap()).is_none());
    }

    #[test]
    fn parse_errors() {
        let d = diagram();
        let net = d.network().clone();
        assert!(parse_diagram(net.clone(), "not a header\n").is_err());
        let bad = format!("{HEADER}\nsubsys: nobody gate 0 0 0\n");
        let e = parse_diagram(net.clone(), &bad).unwrap_err();
        assert!(e.message.contains("unknown instance"));
        let bad = format!("{HEADER}\nnode: n d 0 0 1\n");
        assert!(parse_diagram(net.clone(), &bad).is_err());
        let bad = format!("{HEADER}\nwhatever: 1\n");
        assert!(parse_diagram(net.clone(), &bad).is_err());
        let bad = format!("{HEADER}\nsubsys: u0 gate 0 0 45\n");
        assert!(parse_diagram(net, &bad).is_err());
    }

    #[test]
    fn duplicate_records_rejected_not_overwritten() {
        let d = diagram();
        let net = d.network().clone();
        let bad = format!("{HEADER}\nsubsys: u0 gate 0 0 0\nsubsys: u0 gate 8 0 0\n");
        let e = parse_diagram(net.clone(), &bad).unwrap_err();
        assert!(e.message.contains("duplicate subsys"), "{e}");
        assert_eq!(e.line, 3);
        let bad = format!("{HEADER}\ncontact: io in 0 0\ncontact: io in 5 5\n");
        let e = parse_diagram(net, &bad).unwrap_err();
        assert!(e.message.contains("duplicate contact"), "{e}");
        assert_eq!(e.line, 3);
    }
}
