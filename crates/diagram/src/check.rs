use std::fmt;

use netart_geom::{Interval, Point};
use netart_netlist::NetId;

use crate::Diagram;

/// One violation found by [`CheckReport::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A module or system terminal has no position.
    Unplaced {
        /// Description of the unplaced item.
        item: String,
    },
    /// Placement overlap (modules or terminals).
    PlacementOverlap {
        /// Description of the overlap.
        detail: String,
    },
    /// A routed net does not connect all its pins into one tree.
    NetDisconnected {
        /// The offending net.
        net: NetId,
        /// Net name for diagnostics.
        name: String,
    },
    /// A routed net contains a cycle.
    NetCyclic {
        /// The offending net.
        net: NetId,
        /// Net name for diagnostics.
        name: String,
    },
    /// A net wire enters a module at a point that is not one of the
    /// net's own terminals.
    NetOverModule {
        /// The offending net.
        net: NetId,
        /// The module it violates.
        module: String,
        /// A witness point of the violation.
        at: Point,
    },
    /// A net wire covers a system terminal belonging to a different
    /// net.
    NetOverForeignTerminal {
        /// The offending net.
        net: NetId,
        /// The terminal it covers.
        terminal: String,
    },
    /// Two nets share points other than perpendicular crossings.
    NetContact {
        /// First net.
        a: NetId,
        /// Second net.
        b: NetId,
        /// A witness point.
        at: Point,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Unplaced { item } => write!(f, "unplaced: {item}"),
            CheckError::PlacementOverlap { detail } => write!(f, "placement overlap: {detail}"),
            CheckError::NetDisconnected { name, .. } => {
                write!(f, "net `{name}` does not connect all its pins")
            }
            CheckError::NetCyclic { name, .. } => write!(f, "net `{name}` contains a cycle"),
            CheckError::NetOverModule { module, at, .. } => {
                write!(f, "net wire enters module `{module}` at {at}")
            }
            CheckError::NetOverForeignTerminal { terminal, .. } => {
                write!(f, "net wire covers foreign system terminal `{terminal}`")
            }
            CheckError::NetContact { a, b, at } => {
                write!(f, "nets {a} and {b} illegally touch at {at}")
            }
        }
    }
}

/// Result of the structural diagram check.
///
/// This takes the place of the ESCHER simulation in the paper's example
/// 3: it proves the routed diagram is electrically the given netlist and
/// respects the §3.2/§5.3 postconditions. Unrouted nets are *not*
/// errors (the router reports them separately); routed geometry must be
/// sound.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    errors: Vec<CheckError>,
}

impl CheckReport {
    /// Runs all checks on a diagram.
    pub fn run(diagram: &Diagram) -> Self {
        let mut errors = Vec::new();
        let network = diagram.network();
        let placement = diagram.placement();

        for m in network.modules() {
            if placement.module(m).is_none() {
                errors.push(CheckError::Unplaced {
                    item: format!("module {}", network.instance(m).name()),
                });
            }
        }
        for st in network.system_terms() {
            if placement.system_term(st).is_none() {
                errors.push(CheckError::Unplaced {
                    item: format!("system terminal {}", network.system_term(st).name()),
                });
            }
        }
        if !errors.is_empty() {
            // Geometry checks need a complete placement.
            return CheckReport { errors };
        }

        for detail in placement.overlap_violations(network) {
            errors.push(CheckError::PlacementOverlap { detail });
        }

        // Per-net checks.
        for (n, path) in diagram.routes() {
            let name = network.net(n).name().to_owned();
            let pins: Vec<Point> = network
                .net(n)
                .pins()
                .iter()
                .map(|&p| placement.pin_position(network, p))
                .collect();
            if !path.connects(&pins) {
                errors.push(CheckError::NetDisconnected { net: n, name: name.clone() });
            }
            if !path.is_tree() {
                errors.push(CheckError::NetCyclic { net: n, name: name.clone() });
            }

            // Module overlap: a wire may touch a module boundary (that
            // is where terminals live and where routing tracks run) but
            // never enter its interior.
            for m in network.modules() {
                let rect = placement.module_rect(network, m);
                'seg: for seg in path.segments() {
                    let (tlo, thi) = match seg.axis() {
                        netart_geom::Axis::Horizontal => {
                            if !rect.y_span().contains(seg.track()) {
                                continue;
                            }
                            let Some(ov) = rect.x_span().intersect(seg.span()) else {
                                continue;
                            };
                            (ov.lo(), ov.hi())
                        }
                        netart_geom::Axis::Vertical => {
                            if !rect.x_span().contains(seg.track()) {
                                continue;
                            }
                            let Some(ov) = rect.y_span().intersect(seg.span()) else {
                                continue;
                            };
                            (ov.lo(), ov.hi())
                        }
                    };
                    for v in Interval::new(tlo, thi).iter() {
                        let p = seg.point_at(v);
                        if rect.contains_strictly(p) {
                            errors.push(CheckError::NetOverModule {
                                net: n,
                                module: network.instance(m).name().to_owned(),
                                at: p,
                            });
                            continue 'seg;
                        }
                    }
                }
            }

            // Foreign system terminals.
            for st in network.system_terms() {
                if network.system_term_net(st) == Some(n) {
                    continue;
                }
                let p = placement
                    .system_term(st)
                    .expect("checked placed above");
                if path.contains(p) {
                    errors.push(CheckError::NetOverForeignTerminal {
                        net: n,
                        terminal: network.system_term(st).name().to_owned(),
                    });
                }
            }
        }

        // Pairwise net contacts.
        let routed: Vec<(NetId, &crate::NetPath)> = diagram.routes().collect();
        for (i, &(na, pa)) in routed.iter().enumerate() {
            for &(nb, pb) in &routed[i + 1..] {
                if let Some(&at) = pa.illegal_contacts_with(pb).first() {
                    errors.push(CheckError::NetContact { a: na, b: nb, at });
                }
            }
        }

        CheckReport { errors }
    }

    /// `true` when no violations were found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// The violations found.
    pub fn errors(&self) -> &[CheckError] {
        &self.errors
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.errors.is_empty() {
            return f.write_str("diagram check: ok");
        }
        writeln!(f, "diagram check: {} violation(s)", self.errors.len())?;
        for e in &self.errors {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetPath, Placement};
    use netart_geom::{Point, Rotation, Segment};
    use netart_netlist::{Library, ModuleId, Network, NetworkBuilder, Template, TermType};

    fn network() -> (Network, ModuleId, ModuleId) {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        (b.finish().unwrap(), u0, u1)
    }

    fn placed() -> (Diagram, NetId) {
        let (net, u0, u1) = network();
        let n = net.net_by_name("n").unwrap();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(8, 0), Rotation::R0);
        (Diagram::new(net, p), n)
    }

    #[test]
    fn unplaced_detected() {
        let (net, u0, _) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        let d = Diagram::new(net, p);
        let r = d.check();
        assert!(!r.is_ok());
        assert!(matches!(r.errors()[0], CheckError::Unplaced { .. }));
    }

    #[test]
    fn clean_diagram_passes() {
        let (mut d, n) = placed();
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        let r = d.check();
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.to_string(), "diagram check: ok");
    }

    #[test]
    fn disconnected_net_detected() {
        let (mut d, n) = placed();
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 6)]));
        let r = d.check();
        assert!(r.errors().iter().any(|e| matches!(e, CheckError::NetDisconnected { .. })), "{r}");
    }

    #[test]
    fn wire_through_module_detected() {
        let (mut d, n) = placed();
        // Wire dives straight through u1 (which spans x in [8,12], y in [0,2]).
        d.set_route(
            n,
            NetPath::from_segments(vec![
                Segment::horizontal(1, 4, 8),
                Segment::horizontal(1, 8, 10),
                Segment::vertical(10, 1, 5),
                // connect back so the net still touches its pins
            ]),
        );
        let r = d.check();
        assert!(
            r.errors().iter().any(|e| matches!(e, CheckError::NetOverModule { .. })),
            "{r}"
        );
    }

    #[test]
    fn cyclic_net_detected() {
        let (mut d, n) = placed();
        d.set_route(
            n,
            NetPath::from_segments(vec![
                Segment::horizontal(1, 4, 8),
                Segment::horizontal(3, 4, 8),
                Segment::vertical(4, 1, 3),
                Segment::vertical(8, 1, 3),
            ]),
        );
        let r = d.check();
        assert!(r.errors().iter().any(|e| matches!(e, CheckError::NetCyclic { .. })), "{r}");
    }

    #[test]
    fn foreign_terminal_cover_detected() {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("io", TermType::In).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect("m", st).unwrap();
        b.connect_pin("m", u0, "a").unwrap();
        let net = b.finish().unwrap();
        let n = net.net_by_name("n").unwrap();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(8, 0), Rotation::R0);
        p.place_system_term(st, Point::new(6, 1)); // sits right on n's track
        let mut d = Diagram::new(net, p);
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        let r = d.check();
        assert!(
            r.errors()
                .iter()
                .any(|e| matches!(e, CheckError::NetOverForeignTerminal { .. })),
            "{r}"
        );
    }

    #[test]
    fn net_contact_detected() {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("g", (2, 4))
                    .unwrap()
                    .with_terminal("a", (2, 1), TermType::Out)
                    .unwrap()
                    .with_terminal("b", (2, 3), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        b.connect_pin("n1", u0, "a").unwrap();
        b.connect_pin("n1", u1, "a").unwrap();
        b.connect_pin("n2", u0, "b").unwrap();
        b.connect_pin("n2", u1, "b").unwrap();
        let net = b.finish().unwrap();
        let n1 = net.net_by_name("n1").unwrap();
        let n2 = net.net_by_name("n2").unwrap();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(10, 0), Rotation::R0);
        let mut d = Diagram::new(net, p);
        d.set_route(n1, NetPath::from_segments(vec![Segment::horizontal(1, 2, 12)]));
        // n2 runs along the same track as n1 for part of the way: illegal.
        d.set_route(
            n2,
            NetPath::from_segments(vec![
                Segment::vertical(2, 1, 3),
                Segment::horizontal(1, 2, 5),
                Segment::vertical(5, 1, 3),
                Segment::horizontal(3, 5, 12),
            ]),
        );
        let r = d.check();
        assert!(r.errors().iter().any(|e| matches!(e, CheckError::NetContact { .. })), "{r}");
    }
}
