use netart_geom::{Point, Rect, Rotation, Side};
use netart_netlist::{ModuleId, Network, Pin, SystemTermId, TermIdx};

/// Position and orientation of one placed module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedModule {
    /// Lower-left corner of the (rotated) module symbol.
    pub position: Point,
    /// Orientation of the symbol.
    pub rotation: Rotation,
}

/// The hierarchical structure the PABLO placement discovered:
/// partitions, the boxes (strings) inside each partition, and the module
/// order (level assignment) inside each box.
///
/// Purely informational — useful for inspecting how the placement came
/// about (the paper's figures 6.2–6.4 differ exactly in this structure).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementStructure {
    /// `partitions[p][b]` is the module string of box `b` in partition
    /// `p`, in level order (left to right).
    pub partitions: Vec<Vec<Vec<ModuleId>>>,
}

impl PlacementStructure {
    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Number of boxes over all partitions.
    pub fn box_count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Length of the longest string.
    pub fn longest_string(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.iter().map(Vec::len))
            .max()
            .unwrap_or(0)
    }
}

/// A placement: the output of the placement phase (§4.4 postcondition) —
/// a location for each module and each system terminal.
///
/// Positions of modules are lower-left corners of the *rotated* symbol;
/// terminal positions and sides are reported post-rotation, which is
/// what the routing phase consumes.
#[derive(Debug, Clone)]
pub struct Placement {
    modules: Vec<Option<PlacedModule>>,
    system_terms: Vec<Option<Point>>,
    structure: Option<PlacementStructure>,
}

impl Placement {
    /// An empty placement for the given network: nothing placed yet.
    pub fn new(network: &Network) -> Self {
        Placement {
            modules: vec![None; network.module_count()],
            system_terms: vec![None; network.system_term_count()],
            structure: None,
        }
    }

    /// Places (or re-places) a module.
    ///
    /// # Panics
    ///
    /// Panics when `m` does not belong to the network this placement was
    /// created for.
    pub fn place_module(&mut self, m: ModuleId, position: Point, rotation: Rotation) {
        self.modules[m.index()] = Some(PlacedModule { position, rotation });
    }

    /// Places (or re-places) a system terminal.
    pub fn place_system_term(&mut self, st: SystemTermId, position: Point) {
        self.system_terms[st.index()] = Some(position);
    }

    /// The placement record of a module, if placed.
    pub fn module(&self, m: ModuleId) -> Option<PlacedModule> {
        self.modules[m.index()]
    }

    /// The position of a system terminal, if placed.
    pub fn system_term(&self, st: SystemTermId) -> Option<Point> {
        self.system_terms[st.index()]
    }

    /// `true` when every module and system terminal has a position.
    pub fn is_complete(&self) -> bool {
        self.modules.iter().all(Option::is_some) && self.system_terms.iter().all(Option::is_some)
    }

    /// Attaches the partition/box structure discovered by the placer.
    pub fn set_structure(&mut self, structure: PlacementStructure) {
        self.structure = Some(structure);
    }

    /// The partition/box structure, when the placement came from the
    /// PABLO placer.
    pub fn structure(&self) -> Option<&PlacementStructure> {
        self.structure.as_ref()
    }

    /// The rectangle occupied by a placed module's symbol.
    ///
    /// # Panics
    ///
    /// Panics when the module is not placed.
    pub fn module_rect(&self, network: &Network, m: ModuleId) -> Rect {
        let placed = self.modules[m.index()].expect("module not placed");
        let size = placed.rotation.apply_size(network.template_of(m).size());
        Rect::new(placed.position, size.0, size.1)
    }

    /// Absolute position of a subsystem terminal, after rotation and
    /// translation.
    ///
    /// # Panics
    ///
    /// Panics when the module is not placed or `term` is out of range.
    pub fn terminal_position(&self, network: &Network, m: ModuleId, term: TermIdx) -> Point {
        let placed = self.modules[m.index()].expect("module not placed");
        let tpl = network.template_of(m);
        let rel = placed
            .rotation
            .apply_point(tpl.terminals()[term].offset(), tpl.size());
        placed.position + rel
    }

    /// The side of the placed (rotated) module a terminal faces.
    ///
    /// # Panics
    ///
    /// Panics when the module is not placed or `term` is out of range.
    pub fn terminal_side(&self, network: &Network, m: ModuleId, term: TermIdx) -> Side {
        let placed = self.modules[m.index()].expect("module not placed");
        placed.rotation.apply_side(network.template_of(m).terminal_side(term))
    }

    /// Absolute position of any pin (subsystem or system terminal).
    ///
    /// # Panics
    ///
    /// Panics when the pin's module or terminal is not placed.
    pub fn pin_position(&self, network: &Network, pin: Pin) -> Point {
        match pin {
            Pin::Sub { module, term } => self.terminal_position(network, module, term),
            Pin::System(st) => self.system_terms[st.index()].expect("system terminal not placed"),
        }
    }

    /// Bounding box over all placed modules and system terminals.
    ///
    /// Returns `None` when nothing is placed.
    pub fn bounding_box(&self, network: &Network) -> Option<Rect> {
        let mut acc: Option<Rect> = None;
        for m in network.modules() {
            if self.modules[m.index()].is_some() {
                let r = self.module_rect(network, m);
                acc = Some(acc.map_or(r, |a| a.hull(&r)));
            }
        }
        for p in self.system_terms.iter().flatten() {
            let r = Rect::new(*p, 0, 0);
            acc = Some(acc.map_or(r, |a| a.hull(&r)));
        }
        acc
    }

    /// Checks the non-overlap postconditions of the placement phase:
    /// no two module symbols overlap (interiors), and no system terminal
    /// lies inside a module or coincides with another terminal.
    ///
    /// Returns a human-readable description per violation; empty means
    /// the placement is legal.
    pub fn overlap_violations(&self, network: &Network) -> Vec<String> {
        let mut violations = Vec::new();
        let placed: Vec<ModuleId> = network
            .modules()
            .filter(|m| self.modules[m.index()].is_some())
            .collect();
        for (i, &a) in placed.iter().enumerate() {
            let ra = self.module_rect(network, a);
            for &b in &placed[i + 1..] {
                let rb = self.module_rect(network, b);
                if ra.overlaps_strictly(&rb) {
                    violations.push(format!(
                        "modules {} and {} overlap ({ra} vs {rb})",
                        network.instance(a).name(),
                        network.instance(b).name()
                    ));
                }
            }
        }
        let terms: Vec<(SystemTermId, Point)> = network
            .system_terms()
            .filter_map(|st| self.system_terms[st.index()].map(|p| (st, p)))
            .collect();
        for (i, &(st, p)) in terms.iter().enumerate() {
            for &m in &placed {
                if self.module_rect(network, m).contains_strictly(p) {
                    violations.push(format!(
                        "system terminal {} at {p} lies inside module {}",
                        network.system_term(st).name(),
                        network.instance(m).name()
                    ));
                }
            }
            for &(other, q) in &terms[i + 1..] {
                if p == q {
                    violations.push(format!(
                        "system terminals {} and {} coincide at {p}",
                        network.system_term(st).name(),
                        network.system_term(other).name()
                    ));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_geom::Dir;
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn network() -> (Network, ModuleId, ModuleId, SystemTermId) {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("in", TermType::In).unwrap();
        b.connect("nin", st).unwrap();
        b.connect_pin("nin", u0, "a").unwrap();
        b.connect_pin("n0", u0, "y").unwrap();
        b.connect_pin("n0", u1, "a").unwrap();
        (b.finish().unwrap(), u0, u1, st)
    }

    #[test]
    fn placement_lifecycle() {
        let (net, u0, u1, st) = network();
        let mut p = Placement::new(&net);
        assert!(!p.is_complete());
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(10, 0), Rotation::R0);
        assert!(!p.is_complete());
        p.place_system_term(st, Point::new(-2, 1));
        assert!(p.is_complete());
        assert_eq!(p.module(u0).unwrap().position, Point::new(0, 0));
        assert_eq!(p.system_term(st), Some(Point::new(-2, 1)));
    }

    #[test]
    fn rotated_terminal_geometry() {
        let (net, u0, _, _) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(5, 5), Rotation::R180);
        // 4x2 module rotated 180: same size, terminal `a` moves from the
        // left edge to the right edge.
        assert_eq!(p.module_rect(&net, u0), Rect::new(Point::new(5, 5), 4, 2));
        assert_eq!(p.terminal_position(&net, u0, 0), Point::new(9, 6));
        assert_eq!(p.terminal_side(&net, u0, 0), Dir::Right);
        assert_eq!(p.terminal_position(&net, u0, 1), Point::new(5, 6));
        assert_eq!(p.terminal_side(&net, u0, 1), Dir::Left);
    }

    #[test]
    fn rotated_90_geometry() {
        let (net, u0, _, _) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R90);
        assert_eq!(p.module_rect(&net, u0), Rect::new(Point::new(0, 0), 2, 4));
        // terminal a at (0,1) on left edge -> rotates to bottom edge.
        assert_eq!(p.terminal_side(&net, u0, 0), Dir::Down);
        assert_eq!(p.terminal_position(&net, u0, 0), Point::new(1, 0));
    }

    #[test]
    fn pin_positions_and_bbox() {
        let (net, u0, u1, st) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(8, 4), Rotation::R0);
        p.place_system_term(st, Point::new(-3, 1));
        assert_eq!(
            p.pin_position(&net, Pin::Sub { module: u1, term: 0 }),
            Point::new(8, 5)
        );
        assert_eq!(p.pin_position(&net, Pin::System(st)), Point::new(-3, 1));
        let bb = p.bounding_box(&net).unwrap();
        assert_eq!(bb, Rect::from_corners(Point::new(-3, 0), Point::new(12, 6)));
    }

    #[test]
    fn overlap_detection() {
        let (net, u0, u1, st) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(2, 1), Rotation::R0); // overlaps u0
        p.place_system_term(st, Point::new(1, 1)); // inside u0
        let v = p.overlap_violations(&net);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("overlap"));
        assert!(v[1].contains("inside module"));
    }

    #[test]
    fn touching_modules_are_legal() {
        let (net, u0, u1, st) = network();
        let mut p = Placement::new(&net);
        p.place_module(u0, Point::new(0, 0), Rotation::R0);
        p.place_module(u1, Point::new(4, 0), Rotation::R0); // shares edge x=4
        p.place_system_term(st, Point::new(0, 5));
        assert!(p.overlap_violations(&net).is_empty());
    }

    #[test]
    fn coinciding_terminals_reported() {
        let (net, u0, u1, _) = network();
        let mut lib_p = Placement::new(&net);
        lib_p.place_module(u0, Point::new(0, 0), Rotation::R0);
        lib_p.place_module(u1, Point::new(10, 0), Rotation::R0);
        // Two system terminals at the same point: build a network with two.
        // (reusing the single-terminal network: place it twice is not
        // possible, so simulate by checking the message shape instead)
        let v = lib_p.overlap_violations(&net);
        assert!(v.is_empty());
    }

    #[test]
    fn structure_accessors() {
        let (net, u0, u1, _) = network();
        let mut p = Placement::new(&net);
        let s = PlacementStructure {
            partitions: vec![vec![vec![u0, u1]], vec![]],
        };
        assert_eq!(s.partition_count(), 2);
        assert_eq!(s.box_count(), 1);
        assert_eq!(s.longest_string(), 2);
        p.set_structure(s.clone());
        assert_eq!(p.structure(), Some(&s));
    }
}
