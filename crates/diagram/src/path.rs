use std::collections::{HashMap, HashSet};

use netart_geom::{Axis, Dir, Point, Segment};

/// The routed geometry of one net: a set of axis-aligned segments that
/// together form the net's wires.
///
/// All metrics are computed on the *unit-edge graph* covered by the
/// segments — every grid step covered by some segment is an edge — which
/// makes them robust against overlapping or touching segment
/// representations of the same wire.
///
/// # Examples
///
/// ```
/// use netart_diagram::NetPath;
/// use netart_geom::{Point, Segment};
///
/// // An L from (0,0) to (3,2).
/// let path = NetPath::from_segments(vec![
///     Segment::horizontal(0, 0, 3),
///     Segment::vertical(3, 0, 2),
/// ]);
/// assert_eq!(path.length(), 5);
/// assert_eq!(path.bends(), 1);
/// assert_eq!(path.branch_points().len(), 0);
/// assert!(path.connects(&[Point::new(0, 0), Point::new(3, 2)]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetPath {
    segments: Vec<Segment>,
}

impl NetPath {
    /// An empty path (an unrouted net).
    pub fn new() -> Self {
        NetPath::default()
    }

    /// Wraps a list of segments. Degenerate (zero-length) segments are
    /// kept; they can carry a terminal that coincides with a wire end.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        NetPath { segments }
    }

    /// The raw segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Appends a segment.
    pub fn push(&mut self, seg: Segment) {
        self.segments.push(seg);
    }

    /// `true` when the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The set of unit edges covered, as (point, direction-right-or-up)
    /// pairs, deduplicated.
    fn unit_edges(&self) -> HashSet<(Point, Axis)> {
        let mut edges = HashSet::new();
        for seg in &self.segments {
            let span = seg.span();
            for v in span.lo()..span.hi() {
                edges.insert((seg.point_at(v), seg.axis()));
            }
        }
        edges
    }

    /// Adjacency of the unit-edge graph: every covered point mapped to
    /// the directions in which a unit edge leaves it.
    fn adjacency(&self) -> HashMap<Point, Vec<Dir>> {
        let mut adj: HashMap<Point, Vec<Dir>> = HashMap::new();
        let mut connect = |p: Point, d: Dir| {
            let dirs = adj.entry(p).or_default();
            if !dirs.contains(&d) {
                dirs.push(d);
            }
        };
        for (p, axis) in self.unit_edges() {
            match axis {
                Axis::Horizontal => {
                    connect(p, Dir::Right);
                    connect(p.step(Dir::Right), Dir::Left);
                }
                Axis::Vertical => {
                    connect(p, Dir::Up);
                    connect(p.step(Dir::Up), Dir::Down);
                }
            }
        }
        // Degenerate segments contribute isolated points.
        for seg in &self.segments {
            if seg.is_point() {
                adj.entry(seg.endpoints().0).or_default();
            }
        }
        adj
    }

    /// Total wire length: the number of distinct unit edges covered.
    pub fn length(&self) -> u32 {
        self.unit_edges().len() as u32
    }

    /// Number of bends: points where the wire turns a corner (degree-2
    /// points whose two incident edges are perpendicular).
    ///
    /// Rule 6 of the paper asks to keep this low; the line-expansion
    /// router minimises it per net.
    pub fn bends(&self) -> u32 {
        self.adjacency()
            .values()
            .filter(|dirs| dirs.len() == 2 && dirs[0].axis() != dirs[1].axis())
            .count() as u32
    }

    /// Points where the net branches (degree ≥ 3): the paper's
    /// "branching nodes", kept low by Rule 6.
    pub fn branch_points(&self) -> Vec<Point> {
        let mut pts: Vec<Point> = self
            .adjacency()
            .into_iter()
            .filter(|(_, dirs)| dirs.len() >= 3)
            .map(|(p, _)| p)
            .collect();
        pts.sort_unstable();
        pts
    }

    /// `true` when `p` lies on the path.
    pub fn contains(&self, p: Point) -> bool {
        self.segments.iter().any(|s| s.contains(p))
    }

    /// `true` when the covered geometry is connected and touches every
    /// point of `terminals`.
    ///
    /// This is the electrical soundness check: a routed net must be one
    /// connected tree through all its pins.
    pub fn connects(&self, terminals: &[Point]) -> bool {
        if terminals.is_empty() {
            return true;
        }
        let adj = self.adjacency();
        if terminals.iter().any(|t| !adj.contains_key(t)) {
            return false;
        }
        // BFS from the first terminal over unit edges.
        let mut seen = HashSet::new();
        let mut queue = vec![terminals[0]];
        seen.insert(terminals[0]);
        while let Some(p) = queue.pop() {
            if let Some(dirs) = adj.get(&p) {
                for &d in dirs {
                    let q = p.step(d);
                    if seen.insert(q) {
                        queue.push(q);
                    }
                }
            }
        }
        terminals.iter().all(|t| seen.contains(t))
    }

    /// `true` when the covered geometry contains a cycle, in any
    /// connected component. Partial preroutes may be disconnected (the
    /// router completes them) but Appendix F forbids cycles.
    pub fn has_cycle(&self) -> bool {
        let adj = self.adjacency();
        let edges = self.unit_edges().len();
        // Count connected components over the covered points.
        let mut seen: HashSet<Point> = HashSet::new();
        let mut components = 0;
        for &start in adj.keys() {
            if !seen.insert(start) {
                continue;
            }
            components += 1;
            let mut queue = vec![start];
            while let Some(p) = queue.pop() {
                for &d in &adj[&p] {
                    let q = p.step(d);
                    if seen.insert(q) {
                        queue.push(q);
                    }
                }
            }
        }
        edges + components != adj.len()
    }

    /// `true` when the covered geometry is a tree (connected and without
    /// cycles). An empty path is trivially a tree.
    pub fn is_tree(&self) -> bool {
        let adj = self.adjacency();
        if adj.is_empty() {
            return true;
        }
        let nodes = adj.len();
        let edges = self.unit_edges().len();
        if edges + 1 != nodes {
            return false;
        }
        // Connectivity: reach all nodes from any one.
        let start = *adj.keys().next().expect("non-empty");
        let mut seen = HashSet::new();
        let mut queue = vec![start];
        seen.insert(start);
        while let Some(p) = queue.pop() {
            for &d in &adj[&p] {
                let q = p.step(d);
                if seen.insert(q) {
                    queue.push(q);
                }
            }
        }
        seen.len() == nodes
    }

    /// Interior crossing points between this path and another net's
    /// path: the "crossovers" of Rule 6. Each geometric point is
    /// reported once.
    pub fn crossings_with(&self, other: &NetPath) -> Vec<Point> {
        let mut pts = HashSet::new();
        for a in &self.segments {
            for b in &other.segments {
                if a.crosses_interior(b) {
                    if let Some(p) = a.crossing(b) {
                        pts.insert(p);
                    }
                }
            }
        }
        let mut v: Vec<Point> = pts.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Points shared with another path that are *not* legal perpendicular
    /// crossings — i.e. overlaps or T-touches between different nets,
    /// which the routing postcondition forbids ("the only common points
    /// of different nets are crossing points", §5.3).
    pub fn illegal_contacts_with(&self, other: &NetPath) -> Vec<Point> {
        let my_adj = self.adjacency();
        let their_adj = other.adjacency();
        let mut bad: Vec<Point> = my_adj
            .iter()
            .filter_map(|(p, my_dirs)| {
                let their_dirs = their_adj.get(p)?;
                // A legal crossing: this net passes straight through on
                // one axis, the other net straight through on the other.
                let straight = |dirs: &[Dir]| -> Option<Axis> {
                    (dirs.len() == 2 && dirs[0].axis() == dirs[1].axis())
                        .then(|| dirs[0].axis())
                };
                match (straight(my_dirs), straight(their_dirs)) {
                    (Some(a), Some(b)) if a != b => None,
                    _ => Some(*p),
                }
            })
            .collect();
        bad.sort_unstable();
        bad
    }
}

impl FromIterator<Segment> for NetPath {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        NetPath::from_segments(iter.into_iter().collect())
    }
}

impl Extend<Segment> for NetPath {
    fn extend<I: IntoIterator<Item = Segment>>(&mut self, iter: I) {
        self.segments.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_path() -> NetPath {
        NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 3),
            Segment::vertical(3, 0, 2),
        ])
    }

    #[test]
    fn length_dedups_overlaps() {
        let p = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 4),
            Segment::horizontal(0, 2, 6), // overlaps [2,4]
        ]);
        assert_eq!(p.length(), 6);
    }

    #[test]
    fn bends_on_l_and_z() {
        assert_eq!(l_path().bends(), 1);
        let z = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 2),
            Segment::vertical(2, 0, 2),
            Segment::horizontal(2, 2, 4),
        ]);
        assert_eq!(z.bends(), 2);
        let straight = NetPath::from_segments(vec![Segment::horizontal(0, 0, 9)]);
        assert_eq!(straight.bends(), 0);
    }

    #[test]
    fn branch_points_on_t() {
        let t = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 4),
            Segment::vertical(2, 0, 3),
        ]);
        assert_eq!(t.branch_points(), vec![Point::new(2, 0)]);
        assert_eq!(t.bends(), 0);
    }

    #[test]
    fn connectivity() {
        let p = l_path();
        assert!(p.connects(&[Point::new(0, 0), Point::new(3, 2)]));
        assert!(p.connects(&[Point::new(2, 0)])); // mid point on the wire
        assert!(!p.connects(&[Point::new(0, 0), Point::new(5, 5)]));
        let disconnected = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 1),
            Segment::horizontal(5, 0, 1),
        ]);
        assert!(!disconnected.connects(&[Point::new(0, 0), Point::new(0, 5)]));
    }

    #[test]
    fn tree_detection() {
        assert!(l_path().is_tree());
        assert!(NetPath::new().is_tree());
        let cycle = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 2),
            Segment::horizontal(2, 0, 2),
            Segment::vertical(0, 0, 2),
            Segment::vertical(2, 0, 2),
        ]);
        assert!(!cycle.is_tree());
        let forest = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 1),
            Segment::horizontal(5, 0, 1),
        ]);
        assert!(!forest.is_tree());
    }

    #[test]
    fn cycle_detection_distinguishes_forests() {
        assert!(!l_path().has_cycle());
        assert!(!NetPath::new().has_cycle());
        // A disconnected forest is cycle-free (a legal partial preroute).
        let forest = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 1),
            Segment::horizontal(5, 0, 1),
        ]);
        assert!(!forest.has_cycle());
        // A square is a cycle.
        let cycle = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 2),
            Segment::horizontal(2, 0, 2),
            Segment::vertical(0, 0, 2),
            Segment::vertical(2, 0, 2),
        ]);
        assert!(cycle.has_cycle());
        // A forest with one cyclic component is still cyclic.
        let mixed = NetPath::from_segments(vec![
            Segment::horizontal(0, 0, 2),
            Segment::horizontal(2, 0, 2),
            Segment::vertical(0, 0, 2),
            Segment::vertical(2, 0, 2),
            Segment::horizontal(9, 0, 3),
        ]);
        assert!(mixed.has_cycle());
    }

    #[test]
    fn crossings_between_nets() {
        let h = NetPath::from_segments(vec![Segment::horizontal(1, 0, 4)]);
        let v = NetPath::from_segments(vec![Segment::vertical(2, 0, 3)]);
        assert_eq!(h.crossings_with(&v), vec![Point::new(2, 1)]);
        assert_eq!(v.crossings_with(&h), vec![Point::new(2, 1)]);
        // Touch at an endpoint is not a crossing.
        let touch = NetPath::from_segments(vec![Segment::vertical(0, 0, 3)]);
        assert!(h.crossings_with(&touch).is_empty());
    }

    #[test]
    fn illegal_contacts() {
        let h = NetPath::from_segments(vec![Segment::horizontal(1, 0, 4)]);
        let v = NetPath::from_segments(vec![Segment::vertical(2, 0, 3)]);
        // A clean perpendicular crossing is legal.
        assert!(h.illegal_contacts_with(&v).is_empty());
        // A T-touch is illegal.
        let t = NetPath::from_segments(vec![Segment::vertical(2, 1, 3)]);
        assert_eq!(h.illegal_contacts_with(&t), vec![Point::new(2, 1)]);
        // Overlap along a track is illegal.
        let along = NetPath::from_segments(vec![Segment::horizontal(1, 2, 6)]);
        assert!(!h.illegal_contacts_with(&along).is_empty());
    }

    #[test]
    fn degenerate_segment_keeps_terminal_point() {
        let p = NetPath::from_segments(vec![Segment::point(Axis::Horizontal, Point::new(3, 3))]);
        assert_eq!(p.length(), 0);
        assert!(p.connects(&[Point::new(3, 3)]));
    }

    #[test]
    fn collect_and_extend() {
        let mut p: NetPath = vec![Segment::horizontal(0, 0, 1)].into_iter().collect();
        p.extend(vec![Segment::vertical(1, 0, 1)]);
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.bends(), 1);
    }
}
