//! ASCII-art rendering of schematic diagrams.
//!
//! Before plotters, schematics went to line printers; this renderer
//! keeps that spirit for terminals and tests. One character per grid
//! point: module outlines with `+-|`, instance names inside, wires as
//! `-` and `|` with `+` corners and junctions, `x` where nets cross,
//! `o` for terminals.
//!
//! # Examples
//!
//! ```
//! use netart_diagram::{ascii, Diagram, NetPath, Placement};
//! # use netart_geom::{Point, Rotation, Segment};
//! # use netart_netlist::{Library, NetworkBuilder, Template, TermType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut lib = Library::new();
//! # let inv = lib.add_template(Template::new("inv", (4, 2))?
//! #     .with_terminal("a", (0, 1), TermType::In)?
//! #     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! # let mut b = NetworkBuilder::new(lib);
//! # let u0 = b.add_instance("u0", inv)?;
//! # let u1 = b.add_instance("u1", inv)?;
//! # b.connect_pin("n", u0, "y")?;
//! # b.connect_pin("n", u1, "a")?;
//! # let network = b.finish()?;
//! # let mut placement = Placement::new(&network);
//! # placement.place_module(u0, Point::new(0, 0), Rotation::R0);
//! # placement.place_module(u1, Point::new(8, 0), Rotation::R0);
//! # let mut d = Diagram::new(network, placement);
//! # let n = d.network().net_by_name("n").unwrap();
//! # d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
//! let art = ascii::render(&d);
//! assert!(art.contains("u0"));
//! assert!(art.contains("---"));
//! # Ok(())
//! # }
//! ```

use netart_geom::{Axis, Point, Rect};

use crate::Diagram;

/// A drawing surface mapping grid points to characters with painter's
/// layering.
struct Canvas {
    min: Point,
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl Canvas {
    fn new(bounds: Rect) -> Self {
        let width = bounds.width() as usize + 1;
        let height = bounds.height() as usize + 1;
        Canvas {
            min: bounds.lower_left(),
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    fn index(&self, p: Point) -> Option<usize> {
        let x = p.x - self.min.x;
        // Flip y: row 0 is the top.
        let y = (self.height as i32 - 1) - (p.y - self.min.y);
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return None;
        }
        Some(y as usize * self.width + x as usize)
    }

    fn get(&self, p: Point) -> char {
        self.index(p).map_or(' ', |i| self.cells[i])
    }

    fn put(&mut self, p: Point, c: char) {
        if let Some(i) = self.index(p) {
            self.cells[i] = c;
        }
    }

    /// Wire-aware plotting: drawing a wire over a perpendicular wire
    /// yields `x` (a crossover), joining parallel/corner wires yields
    /// `+`.
    fn put_wire(&mut self, p: Point, c: char) {
        let existing = self.get(p);
        let merged = match (existing, c) {
            (' ', c) => c,
            ('-', '|') | ('|', '-') => 'x',
            ('x', _) | (_, 'x') => 'x',
            ('+', _) | (_, '+') => '+',
            (a, b) if a == b => a,
            _ => '+',
        };
        self.put(p, merged);
    }

    fn into_string(self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for row in self.cells.chunks(self.width) {
            let line: String = row.iter().collect();
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Renders a diagram as printable ASCII art.
///
/// Intended for small-to-medium diagrams; the string has one text
/// column per grid track, so the LIFE network is ~130 columns wide.
pub fn render(diagram: &Diagram) -> String {
    let network = diagram.network();
    let placement = diagram.placement();
    let Some(bb) = placement.bounding_box(network) else {
        return String::new();
    };
    let mut canvas = Canvas::new(bb.inflate(2));

    // Wires first; modules draw over them.
    for (_, path) in diagram.routes() {
        for seg in path.segments() {
            let span = seg.span();
            let glyph = match seg.axis() {
                Axis::Horizontal => '-',
                Axis::Vertical => '|',
            };
            for v in span.iter() {
                canvas.put_wire(seg.point_at(v), glyph);
            }
            // Segment ends are corners or junctions unless they continue.
            let (a, b) = seg.endpoints();
            for p in [a, b] {
                if !seg.is_point() {
                    let c = canvas.get(p);
                    if c == 'x' {
                        // An endpoint on a perpendicular wire of the same
                        // net is a junction, not a crossing.
                        canvas.put(p, '+');
                    }
                }
            }
        }
        // Corners: points where the path bends.
        let p = crate::NetPath::from_segments(path.segments().to_vec());
        for b in p.branch_points() {
            canvas.put(b, '+');
        }
    }

    // Ghost wires: unroutable nets drawn as `~` placeholder lines
    // (possibly diagonal) so the missing connection stays visible.
    for (_, ghost) in diagram.ghosts() {
        for &(a, b) in &ghost.lines {
            let (dx, dy) = (b.x - a.x, b.y - a.y);
            let steps = dx.abs().max(dy.abs());
            for i in 0..=steps {
                let p = if steps == 0 {
                    a
                } else {
                    Point::new(a.x + dx * i / steps, a.y + dy * i / steps)
                };
                if canvas.get(p) == ' ' {
                    canvas.put(p, '~');
                }
            }
        }
    }

    for m in network.modules() {
        let r = placement.module_rect(network, m);
        let (ll, ur) = (r.lower_left(), r.upper_right());
        for x in ll.x..=ur.x {
            canvas.put(Point::new(x, ll.y), '-');
            canvas.put(Point::new(x, ur.y), '-');
        }
        for y in ll.y..=ur.y {
            canvas.put(Point::new(ll.x, y), '|');
            canvas.put(Point::new(ur.x, y), '|');
        }
        for p in [
            ll,
            ur,
            Point::new(ll.x, ur.y),
            Point::new(ur.x, ll.y),
        ] {
            canvas.put(p, '+');
        }
        // Instance name centred inside (clipped to the interior).
        let name = network.instance(m).name();
        let c = r.center();
        let room = (r.width() - 1).max(0) as usize;
        let label: String = name.chars().take(room).collect();
        let start = c.x - (label.chars().count() as i32) / 2;
        for (i, ch) in label.chars().enumerate() {
            let p = Point::new(start + i as i32, c.y);
            if r.contains_strictly(p) {
                canvas.put(p, ch);
            }
        }
        // Terminals on the outline.
        let tpl = network.template_of(m);
        for t in 0..tpl.terminal_count() {
            canvas.put(placement.terminal_position(network, m, t), 'o');
        }
    }

    for st in network.system_terms() {
        if let Some(p) = placement.system_term(st) {
            canvas.put(p, 'O');
        }
    }

    canvas.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetPath, Placement};
    use netart_geom::{Rotation, Segment};
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn diagram() -> Diagram {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("inv", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        let st = b.add_system_terminal("in", TermType::In).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        b.connect("m", st).unwrap();
        b.connect_pin("m", u0, "a").unwrap();
        let network = b.finish().unwrap();
        let mut placement = Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(8, 0), Rotation::R0);
        placement.place_system_term(st, Point::new(-3, 1));
        let mut d = Diagram::new(network, placement);
        let n = d.network().net_by_name("n").unwrap();
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        let m = d.network().net_by_name("m").unwrap();
        d.set_route(m, NetPath::from_segments(vec![Segment::horizontal(1, -3, 0)]));
        d
    }

    #[test]
    fn renders_modules_wires_and_terminals() {
        let art = render(&diagram());
        assert!(art.contains("u0"), "{art}");
        assert!(art.contains("u1"), "{art}");
        assert!(art.contains('O'), "system terminal marker: {art}");
        assert!(art.contains('o'), "subsystem terminal marker: {art}");
        // The wire between the modules renders as dashes.
        assert!(art.contains("---"), "{art}");
        // Module corners exist.
        assert!(art.contains('+'), "{art}");
    }

    #[test]
    fn ghost_wires_render_as_tildes() {
        let mut d = diagram();
        let m = d.network().net_by_name("m").unwrap();
        d.clear_route(m);
        d.set_ghost(
            m,
            crate::GhostWire {
                lines: vec![(Point::new(-3, 4), Point::new(2, 4))],
            },
        );
        let art = render(&d);
        assert!(art.contains("~~~"), "{art}");
    }

    #[test]
    fn crossing_wires_render_as_x() {
        let mut d = diagram();
        // Add an artificial vertical path crossing the u0-u1 wire.
        let m = d.network().net_by_name("m").unwrap();
        d.set_route(
            m,
            NetPath::from_segments(vec![Segment::vertical(6, -2, 4)]),
        );
        let art = render(&d);
        assert!(art.contains('x'), "{art}");
    }

    #[test]
    fn empty_placement_renders_empty() {
        let d = diagram();
        let (net, _, _) = d.into_parts();
        let empty = Diagram::new(net.clone(), Placement::new(&net));
        assert_eq!(render(&empty), "");
    }

    #[test]
    fn dimensions_cover_bounding_box() {
        let d = diagram();
        let art = render(&d);
        let bb = d
            .placement()
            .bounding_box(d.network())
            .unwrap()
            .inflate(2);
        assert_eq!(art.lines().count(), bb.height() as usize + 1);
        let widest = art.lines().map(|l| l.chars().count()).max().unwrap_or(0);
        assert!(widest <= bb.width() as usize + 1);
    }
}
