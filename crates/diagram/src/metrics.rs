use std::fmt;

/// Aggregate quality metrics of a diagram, covering the quantities the
/// paper's guidelines minimise (Rules 5 and 6 of §3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiagramMetrics {
    /// Nets with a routed path.
    pub routed_nets: usize,
    /// Nets without a routed path.
    pub unrouted_nets: usize,
    /// Sum of wire lengths over all routed nets.
    pub total_length: u64,
    /// Sum of bends over all routed nets.
    pub total_bends: u64,
    /// Number of crossing points between different nets (each geometric
    /// point counted once per net pair).
    pub crossovers: u64,
    /// Number of branching nodes over all routed nets.
    pub branch_points: u64,
    /// Area of the placement bounding box (width × height), 0 when
    /// nothing is placed.
    pub bounding_area: u64,
}

impl DiagramMetrics {
    /// Fraction of nets routed, in `[0, 1]`; `1.0` for a netless
    /// diagram.
    pub fn completion(&self) -> f64 {
        let total = self.routed_nets + self.unrouted_nets;
        if total == 0 {
            1.0
        } else {
            self.routed_nets as f64 / total as f64
        }
    }
}

impl fmt::Display for DiagramMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed {}/{} nets, length {}, bends {}, crossovers {}, branch points {}, area {}",
            self.routed_nets,
            self.routed_nets + self.unrouted_nets,
            self.total_length,
            self.total_bends,
            self.crossovers,
            self.branch_points,
            self.bounding_area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_fraction() {
        let m = DiagramMetrics {
            routed_nets: 3,
            unrouted_nets: 1,
            ..Default::default()
        };
        assert!((m.completion() - 0.75).abs() < 1e-9);
        assert_eq!(DiagramMetrics::default().completion(), 1.0);
    }

    #[test]
    fn display_mentions_every_metric() {
        let s = DiagramMetrics::default().to_string();
        for word in ["routed", "length", "bends", "crossovers", "branch", "area"] {
            assert!(s.contains(word), "missing {word} in `{s}`");
        }
    }
}
