use netart_geom::Point;
use netart_netlist::{NetId, Network};

use crate::{CheckReport, DiagramMetrics, NetPath, Placement};

/// A straight-line placeholder for a net that could not be routed: the
/// degraded-output mode of the salvage cascade. Ghost wires ignore the
/// rectilinear wiring rules — each pair is rendered as a direct
/// (possibly diagonal) dashed line — and are kept apart from real
/// routes so checks and metrics never mistake them for wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostWire {
    /// Terminal-to-terminal straight lines covering the net's pins.
    pub lines: Vec<(Point, Point)>,
}

/// A complete schematic diagram: network + placement + routed nets.
///
/// This is the artifact the whole generator produces (fig 3.2 of the
/// paper): the placement phase fills in the [`Placement`], the routing
/// phase adds one [`NetPath`] per net. Nets the router could not
/// complete stay `None`, matching the paper's EUREKA behaviour of
/// warning about unroutable nets rather than failing the run.
#[derive(Debug, Clone)]
pub struct Diagram {
    network: Network,
    placement: Placement,
    routes: Vec<Option<NetPath>>,
    ghosts: Vec<Option<GhostWire>>,
}

impl Diagram {
    /// A diagram over `network` with the given placement and no routed
    /// nets yet.
    pub fn new(network: Network, placement: Placement) -> Self {
        let nets = network.net_count();
        Diagram {
            network,
            placement,
            routes: vec![None; nets],
            ghosts: vec![None; nets],
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access to the placement (for interactive edits, the
    /// paper's schematic-editor loop).
    pub fn placement_mut(&mut self) -> &mut Placement {
        &mut self.placement
    }

    /// The routed path of a net, if routed.
    pub fn route(&self, n: NetId) -> Option<&NetPath> {
        self.routes[n.index()].as_ref()
    }

    /// Sets (or replaces) the routed path of a net. A real route
    /// supersedes any ghost wire the net had.
    pub fn set_route(&mut self, n: NetId, path: NetPath) {
        self.routes[n.index()] = Some(path);
        self.ghosts[n.index()] = None;
    }

    /// Removes the routed path of a net, returning it.
    pub fn clear_route(&mut self, n: NetId) -> Option<NetPath> {
        self.routes[n.index()].take()
    }

    /// Iterates over `(net, path)` for the routed nets.
    pub fn routes(&self) -> impl Iterator<Item = (NetId, &NetPath)> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|p| (NetId::from_index(i), p)))
    }

    /// Nets that have no route yet.
    pub fn unrouted(&self) -> Vec<NetId> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| if r.is_none() { Some(NetId::from_index(i)) } else { None })
            .collect()
    }

    /// The ghost wire of a net, if the salvage cascade emitted one.
    pub fn ghost(&self, n: NetId) -> Option<&GhostWire> {
        self.ghosts[n.index()].as_ref()
    }

    /// Marks a net as unroutable with a straight-line placeholder.
    /// Ignored when the net already has a real route.
    pub fn set_ghost(&mut self, n: NetId, ghost: GhostWire) {
        if self.routes[n.index()].is_none() {
            self.ghosts[n.index()] = Some(ghost);
        }
    }

    /// Removes the ghost wire of a net, returning it.
    pub fn clear_ghost(&mut self, n: NetId) -> Option<GhostWire> {
        self.ghosts[n.index()].take()
    }

    /// Iterates over `(net, ghost)` for the ghost-wired nets.
    pub fn ghosts(&self) -> impl Iterator<Item = (NetId, &GhostWire)> {
        self.ghosts
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (NetId::from_index(i), g)))
    }

    /// Splits the diagram back into its parts (ghost wires, being
    /// placeholders rather than geometry, are dropped).
    pub fn into_parts(self) -> (Network, Placement, Vec<Option<NetPath>>) {
        (self.network, self.placement, self.routes)
    }

    /// Computes the aggregate quality metrics.
    pub fn metrics(&self) -> DiagramMetrics {
        let mut m = DiagramMetrics::default();
        for route in &self.routes {
            match route {
                Some(p) => {
                    m.routed_nets += 1;
                    m.total_length += u64::from(p.length());
                    m.total_bends += u64::from(p.bends());
                    m.branch_points += p.branch_points().len() as u64;
                }
                None => m.unrouted_nets += 1,
            }
        }
        let routed: Vec<&NetPath> = self.routes.iter().flatten().collect();
        for (i, a) in routed.iter().enumerate() {
            for b in &routed[i + 1..] {
                m.crossovers += a.crossings_with(b).len() as u64;
            }
        }
        if let Some(bb) = self.placement.bounding_box(&self.network) {
            m.bounding_area = bb.width() as u64 * bb.height() as u64;
        }
        m
    }

    /// Runs the full structural check; see [`CheckReport`].
    pub fn check(&self) -> CheckReport {
        CheckReport::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netart_geom::{Point, Rotation, Segment};
    use netart_netlist::{Library, NetworkBuilder, Template, TermType};

    fn diagram() -> (Diagram, NetId) {
        let mut lib = Library::new();
        let t = lib
            .add_template(
                Template::new("gate", (4, 2))
                    .unwrap()
                    .with_terminal("a", (0, 1), TermType::In)
                    .unwrap()
                    .with_terminal("y", (4, 1), TermType::Out)
                    .unwrap(),
            )
            .unwrap();
        let mut b = NetworkBuilder::new(lib);
        let u0 = b.add_instance("u0", t).unwrap();
        let u1 = b.add_instance("u1", t).unwrap();
        b.connect_pin("n", u0, "y").unwrap();
        b.connect_pin("n", u1, "a").unwrap();
        let network = b.finish().unwrap();
        let n = network.net_by_name("n").unwrap();
        let mut placement = Placement::new(&network);
        placement.place_module(u0, Point::new(0, 0), Rotation::R0);
        placement.place_module(u1, Point::new(8, 0), Rotation::R0);
        (Diagram::new(network, placement), n)
    }

    #[test]
    fn route_lifecycle() {
        let (mut d, n) = diagram();
        assert_eq!(d.unrouted(), vec![n]);
        assert!(d.route(n).is_none());
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        assert!(d.unrouted().is_empty());
        assert_eq!(d.routes().count(), 1);
        let taken = d.clear_route(n).unwrap();
        assert_eq!(taken.length(), 4);
        assert_eq!(d.unrouted(), vec![n]);
    }

    #[test]
    fn metrics_aggregate() {
        let (mut d, n) = diagram();
        let m = d.metrics();
        assert_eq!(m.unrouted_nets, 1);
        assert_eq!(m.routed_nets, 0);
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        let m = d.metrics();
        assert_eq!(m.routed_nets, 1);
        assert_eq!(m.total_length, 4);
        assert_eq!(m.total_bends, 0);
        assert_eq!(m.crossovers, 0);
        assert_eq!(m.bounding_area, 12 * 2);
        assert_eq!(m.completion(), 1.0);
    }

    #[test]
    fn ghost_lifecycle() {
        let (mut d, n) = diagram();
        let ghost = GhostWire {
            lines: vec![(Point::new(4, 1), Point::new(8, 1))],
        };
        d.set_ghost(n, ghost.clone());
        assert_eq!(d.ghost(n), Some(&ghost));
        assert_eq!(d.ghosts().count(), 1);
        // Ghosts are placeholders: the net still counts as unrouted.
        assert_eq!(d.unrouted(), vec![n]);
        assert_eq!(d.metrics().unrouted_nets, 1);
        // A real route supersedes the ghost.
        d.set_route(n, NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]));
        assert!(d.ghost(n).is_none());
        // And a ghost never overwrites a real route.
        d.set_ghost(n, ghost);
        assert!(d.ghost(n).is_none());
        assert!(d.route(n).is_some());
        assert!(d.clear_ghost(n).is_none());
    }

    #[test]
    fn into_parts_round_trip() {
        let (d, n) = diagram();
        let (net, placement, routes) = d.into_parts();
        assert_eq!(routes.len(), net.net_count());
        let d2 = Diagram::new(net, placement);
        assert!(d2.route(n).is_none());
    }
}
