//! Schematic diagram model for the `netart` generator.
//!
//! A diagram (§3.2 of Koster & Stok, 1989) is a network together with
//!
//! * a [`Placement`] — a position and orientation for every module and a
//!   position for every system terminal, and
//! * a set of routed [`NetPath`]s — rectilinear trees connecting each
//!   net's terminals.
//!
//! [`Diagram`] bundles the three and offers the quality metrics the
//! paper's guidelines optimise (wire length, bends, crossovers,
//! branching nodes — Rules 5 and 6 of §3.2) plus structural checks that
//! take the place of the ESCHER simulation run in the paper's example 3:
//! every routed net must form a connected tree touching exactly its
//! pins, must not overlap modules or other nets, and may share only
//! crossing points with other nets.
//!
//! # Examples
//!
//! ```
//! use netart_diagram::{NetPath, Placement};
//! use netart_geom::{Point, Rotation, Segment};
//! use netart_netlist::{Library, NetworkBuilder, Template, TermType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut lib = Library::new();
//! let inv = lib.add_template(Template::new("inv", (4, 2))?
//!     .with_terminal("a", (0, 1), TermType::In)?
//!     .with_terminal("y", (4, 1), TermType::Out)?)?;
//! let mut b = NetworkBuilder::new(lib);
//! let u0 = b.add_instance("u0", inv)?;
//! let u1 = b.add_instance("u1", inv)?;
//! b.connect_pin("n", u0, "y")?;
//! b.connect_pin("n", u1, "a")?;
//! let network = b.finish()?;
//!
//! let mut placement = Placement::new(&network);
//! placement.place_module(u0, Point::new(0, 0), Rotation::R0);
//! placement.place_module(u1, Point::new(8, 0), Rotation::R0);
//! // u0.y is at (4, 1), u1.a at (8, 1): a straight wire connects them.
//! let path = NetPath::from_segments(vec![Segment::horizontal(1, 4, 8)]);
//! assert_eq!(path.length(), 4);
//! assert_eq!(path.bends(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod ascii;
mod check;
mod diagram;
pub mod escher;
mod metrics;
mod path;
mod placement;
pub mod svg;

pub use check::{CheckError, CheckReport};
pub use diagram::{Diagram, GhostWire};
pub use metrics::DiagramMetrics;
pub use path::NetPath;
pub use placement::{PlacedModule, Placement, PlacementStructure};
