//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, strategies for integer ranges, tuples,
//! [`collection::vec`], [`sample::select`], [`Just`], [`any`], the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, and the `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`
//! macros.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   test's own assertion message) but is not minimised.
//! * **Deterministic RNG.** Each test derives its stream from the test
//!   function name, so failures reproduce across runs; set
//!   `PROPTEST_CASES` to raise or lower the case count globally.

#![warn(missing_docs)]

use std::fmt;

/// Error type carried by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-case error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias used by generated code.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count: `PROPTEST_CASES` overrides when set.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// The deterministic generator strategies draw from (xoshiro256**
/// seeded from the test name through SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from an arbitrary 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// A generator whose stream is a deterministic function of `name`
    /// (FNV-1a), so each property test gets its own reproducible cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform index in `[0, n)`; `n` must be non-zero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generation strategy: how to produce one random value.
///
/// Unlike upstream there is no value tree and no shrinking; a strategy
/// is simply a reusable generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to obtain a second-stage
    /// strategy, then draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (upstream-compatible helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A boxed strategy with an erased concrete type.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % width) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among fixed values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    /// `select(choices)` — one of the given values, uniformly.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.index(self.choices.len())].clone()
        }
    }
}

/// Upstream-compatible `prop::` namespace.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

/// Fails the current property case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Defines property tests over strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///     #[test]
///     fn name(a in strategy_a(), b in 0i32..10) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ( $($strat,)+ );
                for __case in 0..__config.effective_cases() {
                    let __values = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            let ( $($arg,)+ ) = __values;
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.effective_cases(), e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let s = (0i32..10, 5usize..6, -4i64..=4);
        for _ in 0..500 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((0..10).contains(&a));
            assert_eq!(b, 5);
            assert!((-4..=4).contains(&c));
        }
    }

    #[test]
    fn map_flat_map_vec_select_just() {
        let mut rng = TestRng::from_name("combinators");
        let s = (1usize..4)
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0i32..100, n..n + 1)))
            .prop_map(|(n, v)| (n, v));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
        let sel = prop::sample::select(vec!['x', 'y']);
        for _ in 0..50 {
            assert!(matches!(sel.generate(&mut rng), 'x' | 'y'));
        }
        let b = any::<bool>();
        let heads = (0..200).filter(|_| b.generate(&mut rng)).count();
        assert!((40..160).contains(&heads));
    }

    #[test]
    fn deterministic_per_name() {
        let s = 0u64..u64::MAX;
        let a: Vec<u64> = {
            let mut rng = TestRng::from_name("same");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_name("same");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_compiles_and_runs(a in 0i32..100, mut v in prop::collection::vec(0i32..10, 1..5)) {
            v.push(a);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.last().copied(), Some(a), "pushed value is last: {:?}", v);
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        fn always_fails(x in 0i32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        always_fails();
    }
}
