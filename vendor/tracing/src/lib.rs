//! Offline stand-in for the [`tracing`](https://crates.io/crates/tracing)
//! instrumentation crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the API subset its crates use: levelled [`span!`]s with
//! structured fields, [`event!`] and the level shorthands
//! ([`trace!`] … [`error!`]), and a single global [`Subscriber`]
//! installed with [`set_global_default`].
//!
//! Two deliberate simplifications against the real crate:
//!
//! * the grammar is `macro!(Level, "message literal", key = value, …)`
//!   — the message comes first and dynamic data goes in fields;
//! * until a subscriber is installed every macro is a no-op guarded by
//!   one relaxed atomic load, so instrumented library code costs
//!   nothing in unsubscribed processes (and never touches stdout or
//!   stderr itself — writing is the subscriber's business).
//!
//! Spans time themselves: the guard returned by [`Span::enter`] records
//! wall time on drop and hands it to [`Subscriber::on_span_close`].
//! A thread-local stack of enclosing span names is maintained so
//! subscribers can print events in context ([`current_spans`]).

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Verbosity level of a span or event. Ordered by verbosity:
/// `ERROR` is the least verbose, `TRACE` the most.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Level(u8);

impl Level {
    /// Unrecoverable or clearly wrong conditions.
    pub const ERROR: Level = Level(1);
    /// Degraded-but-continuing conditions.
    pub const WARN: Level = Level(2);
    /// High-level progress of a run.
    pub const INFO: Level = Level(3);
    /// Per-item detail (one line per net, per pass, …).
    pub const DEBUG: Level = Level(4);
    /// Innermost detail (candidate lists, search internals).
    pub const TRACE: Level = Level(5);

    /// Numeric verbosity, 1 (`ERROR`) to 5 (`TRACE`).
    pub fn verbosity(self) -> u8 {
        self.0
    }

    /// The canonical upper-case name.
    pub fn as_str(self) -> &'static str {
        match self.0 {
            1 => "ERROR",
            2 => "WARN",
            3 => "INFO",
            4 => "DEBUG",
            _ => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown level `{}` (expected off|error|warn|info|debug|trace)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl std::str::FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::ERROR),
            "warn" | "warning" => Ok(Level::WARN),
            "info" => Ok(Level::INFO),
            "debug" => Ok(Level::DEBUG),
            "trace" => Ok(Level::TRACE),
            other => Err(ParseLevelError(other.to_owned())),
        }
    }
}

/// A structured field value. Numeric kinds are preserved so JSON
/// subscribers can emit real numbers rather than strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    Uint(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant(v as $conv)
            }
        })*
    };
}

value_from!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => Uint as u64, u16 => Uint as u64, u32 => Uint as u64, u64 => Uint as u64,
    usize => Uint as u64,
    f32 => Float as f64, f64 => Float as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}

/// One `key = value` pair on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The field name (the identifier at the call site).
    pub name: &'static str,
    /// The field value.
    pub value: Value,
}

/// A structured event handed to [`Subscriber::on_event`].
#[derive(Debug)]
pub struct Event<'a> {
    /// The event's level.
    pub level: Level,
    /// The message literal.
    pub message: &'a str,
    /// The structured fields, in call-site order.
    pub fields: &'a [Field],
    /// Names of the enclosing spans, outermost first.
    pub spans: &'a [&'static str],
}

/// A span record handed to [`Subscriber::on_span_enter`] and
/// [`Subscriber::on_span_close`].
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// The span's static name.
    pub name: &'static str,
    /// The span's level.
    pub level: Level,
    /// The structured fields, in call-site order.
    pub fields: &'a [Field],
    /// Wall time between enter and close; `None` on enter.
    pub elapsed: Option<Duration>,
}

/// Receives every enabled span and event in the process.
pub trait Subscriber: Send + Sync {
    /// The most verbose level this subscriber wants; everything more
    /// verbose is filtered before any field is even constructed.
    fn max_verbosity(&self) -> Level {
        Level::TRACE
    }

    /// Called for every enabled [`event!`].
    fn on_event(&self, event: &Event<'_>);

    /// Called when an enabled span is entered.
    fn on_span_enter(&self, _span: &SpanRecord<'_>) {}

    /// Called when an enabled span guard drops, with the elapsed wall
    /// time in `span.elapsed`.
    fn on_span_close(&self, _span: &SpanRecord<'_>) {}
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

/// Fast-path filter: 0 until a subscriber is installed, then the
/// subscriber's maximum verbosity.
static MAX_VERBOSITY: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Error returned when a global subscriber is already installed.
#[derive(Debug)]
pub struct SetGlobalDefaultError;

impl fmt::Display for SetGlobalDefaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global default subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalDefaultError {}

/// Installs the process-wide subscriber. May succeed only once.
///
/// # Errors
///
/// [`SetGlobalDefaultError`] when a subscriber is already installed.
pub fn set_global_default(
    subscriber: impl Subscriber + 'static,
) -> Result<(), SetGlobalDefaultError> {
    let verbosity = subscriber.max_verbosity().verbosity();
    SUBSCRIBER
        .set(Box::new(subscriber))
        .map_err(|_| SetGlobalDefaultError)?;
    MAX_VERBOSITY.store(verbosity, Ordering::Release);
    Ok(())
}

/// `true` when a subscriber is installed and wants `level`. This is
/// the single branch every macro pays in unsubscribed processes.
#[inline]
pub fn enabled(level: Level) -> bool {
    level.verbosity() <= MAX_VERBOSITY.load(Ordering::Relaxed)
}

/// The names of the spans entered on this thread, outermost first.
pub fn current_spans() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Monotonic ordinals handed out to threads as they first ask for one.
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable, per-thread identifier: 1 for the first thread that
/// asks, 2 for the second, and so on. Unlike [`std::thread::ThreadId`]
/// the value is a plain integer, which is what trace-event `tid`
/// members want.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

#[doc(hidden)]
pub fn dispatch_event(level: Level, message: &str, fields: &[Field]) {
    if let Some(sub) = SUBSCRIBER.get() {
        SPAN_STACK.with(|s| {
            sub.on_event(&Event {
                level,
                message,
                fields,
                spans: &s.borrow(),
            });
        });
    }
}

/// A levelled, named span. Disabled spans hold no data and cost one
/// branch to enter and drop.
#[derive(Debug)]
pub struct Span {
    data: Option<SpanData>,
}

#[derive(Debug)]
struct SpanData {
    name: &'static str,
    level: Level,
    fields: Vec<Field>,
}

impl Span {
    /// An enabled span (used by the [`span!`] macro once the level
    /// filter has passed).
    pub fn new(level: Level, name: &'static str, fields: Vec<Field>) -> Span {
        Span {
            data: Some(SpanData {
                name,
                level,
                fields,
            }),
        }
    }

    /// A span that does nothing.
    pub fn disabled() -> Span {
        Span { data: None }
    }

    /// Enters the span; the returned guard closes it on drop, timing
    /// the enclosed work.
    pub fn enter(&self) -> Entered<'_> {
        let start = self.data.as_ref().map(|d| {
            SPAN_STACK.with(|s| s.borrow_mut().push(d.name));
            if let Some(sub) = SUBSCRIBER.get() {
                sub.on_span_enter(&SpanRecord {
                    name: d.name,
                    level: d.level,
                    fields: &d.fields,
                    elapsed: None,
                });
            }
            Instant::now()
        });
        Entered { span: self, start }
    }

    /// Runs `f` inside the span.
    pub fn in_scope<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter();
        f()
    }
}

/// Guard returned by [`Span::enter`]; closes the span on drop.
pub struct Entered<'a> {
    span: &'a Span,
    start: Option<Instant>,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if let (Some(data), Some(start)) = (self.span.data.as_ref(), self.start) {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            if let Some(sub) = SUBSCRIBER.get() {
                sub.on_span_close(&SpanRecord {
                    name: data.name,
                    level: data.level,
                    fields: &data.fields,
                    elapsed: Some(start.elapsed()),
                });
            }
        }
    }
}

/// Creates a [`Span`]: `span!(Level::INFO, "name", key = value, …)`.
/// The name must be a string literal; dynamic data goes in fields.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::enabled(lvl) {
            $crate::Span::new(lvl, $name, ::std::vec![$($crate::Field {
                name: ::std::stringify!($key),
                value: $crate::Value::from($value),
            }),*])
        } else {
            $crate::Span::disabled()
        }
    }};
}

/// Emits an [`Event`]: `event!(Level::WARN, "message", key = value, …)`.
/// The message must be a string literal; dynamic data goes in fields.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $msg:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        let lvl = $lvl;
        if $crate::enabled(lvl) {
            $crate::dispatch_event(lvl, $msg, &[$($crate::Field {
                name: ::std::stringify!($key),
                value: $crate::Value::from($value),
            }),*]);
        }
    }};
}

/// [`event!`] at `Level::TRACE`.
#[macro_export]
macro_rules! trace {
    ($($tt:tt)*) => { $crate::event!($crate::Level::TRACE, $($tt)*) };
}

/// [`event!`] at `Level::DEBUG`.
#[macro_export]
macro_rules! debug {
    ($($tt:tt)*) => { $crate::event!($crate::Level::DEBUG, $($tt)*) };
}

/// [`event!`] at `Level::INFO`.
#[macro_export]
macro_rules! info {
    ($($tt:tt)*) => { $crate::event!($crate::Level::INFO, $($tt)*) };
}

/// [`event!`] at `Level::WARN`.
#[macro_export]
macro_rules! warn {
    ($($tt:tt)*) => { $crate::event!($crate::Level::WARN, $($tt)*) };
}

/// [`event!`] at `Level::ERROR`.
#[macro_export]
macro_rules! error {
    ($($tt:tt)*) => { $crate::event!($crate::Level::ERROR, $($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Collects everything it sees. Tests exercise it directly (the
    /// global slot can be claimed only once per process, so unit tests
    /// avoid it and integration callers own it).
    type SeenEvents = Arc<Mutex<Vec<(Level, String, Vec<Field>)>>>;
    type SeenSpans = Arc<Mutex<Vec<(String, Option<Duration>)>>>;

    struct Collector {
        events: SeenEvents,
        spans: SeenSpans,
    }

    impl Subscriber for Collector {
        fn on_event(&self, event: &Event<'_>) {
            self.events.lock().unwrap().push((
                event.level,
                event.message.to_owned(),
                event.fields.to_vec(),
            ));
        }

        fn on_span_close(&self, span: &SpanRecord<'_>) {
            self.spans
                .lock()
                .unwrap()
                .push((span.name.to_owned(), span.elapsed));
        }
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::ERROR < Level::WARN);
        assert!(Level::DEBUG < Level::TRACE);
        assert_eq!("warn".parse::<Level>().unwrap(), Level::WARN);
        assert_eq!("TRACE".parse::<Level>().unwrap(), Level::TRACE);
        assert!("loud".parse::<Level>().is_err());
        assert_eq!(Level::INFO.to_string(), "INFO");
    }

    #[test]
    fn values_preserve_kind() {
        assert_eq!(Value::from(3usize), Value::Uint(3));
        assert_eq!(Value::from(-3i32), Value::Int(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::Uint(7).to_string(), "7");
    }

    #[test]
    fn disabled_macros_are_inert() {
        // No subscriber installed in unit tests: everything filters out
        // and the span is the disabled variant.
        assert!(!enabled(Level::ERROR));
        let span = span!(Level::INFO, "quiet", n = 1u32);
        assert!(span.data.is_none());
        let _g = span.enter();
        info!("nothing happens", value = 42u32);
        assert!(current_spans().is_empty());
    }

    #[test]
    fn collector_sees_direct_dispatch() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let collector = Collector {
            events: events.clone(),
            spans: Arc::new(Mutex::new(Vec::new())),
        };
        collector.on_event(&Event {
            level: Level::WARN,
            message: "net salvaged",
            fields: &[Field {
                name: "net",
                value: Value::Str("clk".into()),
            }],
            spans: &["route"],
        });
        let seen = events.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, "net salvaged");
        assert_eq!(seen[0].2[0].name, "net");
    }

    #[test]
    fn thread_ordinals_are_small_and_stable() {
        let mine = thread_ordinal();
        assert!(mine >= 1);
        assert_eq!(mine, thread_ordinal(), "stable within a thread");
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, other, "distinct across threads");
    }

    #[test]
    fn enabled_span_times_itself() {
        // Exercise Span/Entered against the subscriber trait without
        // the global slot: construct the span by hand.
        let spans = Arc::new(Mutex::new(Vec::new()));
        let collector = Collector {
            events: Arc::new(Mutex::new(Vec::new())),
            spans: spans.clone(),
        };
        let span = Span::new(Level::INFO, "work", Vec::new());
        let record = SpanRecord {
            name: "work",
            level: Level::INFO,
            fields: &[],
            elapsed: Some(Duration::from_millis(1)),
        };
        collector.on_span_close(&record);
        assert_eq!(spans.lock().unwrap()[0].0, "work");
        // Entering without a subscriber still balances the stack.
        {
            let _g = span.enter();
            assert_eq!(current_spans(), vec!["work"]);
        }
        assert!(current_spans().is_empty());
    }
}
