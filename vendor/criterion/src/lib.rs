//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace
//! vendors the API subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId::new`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock mean over a fixed number of
//! iterations — no warm-up, outlier analysis, or HTML reports. That is
//! enough to run the benches end-to-end and get ballpark numbers.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from eliminating a value or the computation
/// producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

const DEFAULT_ITERS: u64 = 10;

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.elapsed.is_zero() {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(iters.max(1)).unwrap_or(u32::MAX)
    };
    println!("bench {label:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Sets the measurement time. Accepted for API compatibility; the
    /// stand-in always runs a fixed iteration count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.iters, &mut f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.iters,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond upstream API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver. Stand-in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_ITERS, &mut f);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: DEFAULT_ITERS,
            _parent: self,
        }
    }
}

/// Declares a benchmark group function (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addition(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2) + black_box(3)));
    }

    criterion_group!(benches, addition);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .bench_function("f", |b| b.iter(|| black_box(1 + 1)))
            .bench_with_input(BenchmarkId::new("with", 7), &7, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        g.finish();
    }
}
