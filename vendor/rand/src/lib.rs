//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the slice of `rand` it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, [`Rng::gen_bool`]
//! and [`seq::SliceRandom::shuffle`]/[`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), which is fine:
//! every consumer in this workspace treats seeded randomness as an
//! arbitrary-but-deterministic source, never as a reproduction of
//! upstream streams. Determinism is what the tests rely on, and that
//! is guaranteed: the same seed always yields the same sequence.

#![warn(missing_docs)]

use std::ops::Range;

/// A seedable random number generator. Stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for a primitive type, used by
/// [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                // Width fits in u64 for every integer type we support.
                let width = (hi as i128 - lo as i128) as u64;
                let v = rng.next_u64() % width; // slight modulo bias: fine for tests/workloads
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing generator trait. Stand-in for `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine here).
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into full state and
            // guarantees a non-zero state even for seed 0.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers. Stand-in for `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices. Stand-in for
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9i32);
            assert!((3..9).contains(&v));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let n = rng.gen_range(-10..-2i64);
            assert!((-10..-2).contains(&n));
        }
        // Every value of a small range appears.
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "20 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
