//! Quickstart: from a hand-built netlist to schematic artwork.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a tiny arithmetic datapath, runs the full generator
//! (placement + routing), prints the quality metrics and writes the
//! diagram as `quickstart.svg`.

use std::error::Error;

use netart::netlist::{Library, NetworkBuilder, Template, TermType};
use netart::{diagram, Generator};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Describe the module symbols (normally loaded from a library).
    let mut lib = Library::new();
    let adder = lib.add_template(
        Template::new("add", (6, 6))?
            .with_terminal("a", (0, 1), TermType::In)?
            .with_terminal("b", (0, 5), TermType::In)?
            .with_terminal("sum", (6, 3), TermType::Out)?,
    )?;
    let reg = lib.add_template(
        Template::new("reg", (4, 4))?
            .with_terminal("d", (0, 2), TermType::In)?
            .with_terminal("q", (4, 2), TermType::Out)?,
    )?;

    // 2. Instantiate and connect: an accumulator loop with I/O.
    let mut b = NetworkBuilder::new(lib);
    let add = b.add_instance("add0", adder)?;
    let acc = b.add_instance("acc", reg)?;
    let input = b.add_system_terminal("din", TermType::In)?;
    let output = b.add_system_terminal("dout", TermType::Out)?;
    b.connect("n_in", input)?;
    b.connect_pin("n_in", add, "a")?;
    b.connect_pin("n_sum", add, "sum")?;
    b.connect_pin("n_sum", acc, "d")?;
    b.connect_pin("n_acc", acc, "q")?;
    b.connect_pin("n_acc", add, "b")?;
    b.connect("n_acc", output)?;
    let network = b.finish()?;

    // 3. Generate the diagram.
    let outcome = Generator::strings().generate(network);
    println!(
        "placed {} modules in {:?}, routed {}/{} nets in {:?}",
        outcome.diagram.network().module_count(),
        outcome.place_time,
        outcome.report.routed.len(),
        outcome.report.routed.len() + outcome.report.failed.len(),
        outcome.route_time,
    );
    println!("quality: {}", outcome.diagram.metrics());
    let check = outcome.diagram.check();
    println!("{check}");

    // 4. Show it right here...
    println!("{}", diagram::ascii::render(&outcome.diagram));

    // ...and save the artwork.
    let svg = diagram::svg::render(&outcome.diagram);
    std::fs::write("quickstart.svg", &svg)?;
    println!("wrote quickstart.svg ({} bytes)", svg.len());
    Ok(())
}
