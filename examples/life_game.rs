//! The paper's example 3 (figures 6.6 and 6.7): routing the
//! game-of-LIFE network — 27 modules, 222 nets — first over the
//! designer's hand placement, then fully automatically.
//!
//! ```sh
//! cargo run --release --example life_game
//! ```
//!
//! (Release mode recommended: the dense LIFE plane is the heaviest
//! workload in the paper.) Writes `life_hand.svg` and `life_auto.svg`.

use std::error::Error;

use netart::place::PlaceConfig;
use netart::route::RouteConfig;
use netart::{diagram, Generator};
use netart_workloads::life;

fn main() -> Result<(), Box<dyn Error>> {
    // Figure 6.6: the modules were placed by hand, the router adds the
    // nets.
    let network = life::network();
    println!(
        "LIFE network: {} modules, {} nets, {} system terminals",
        network.module_count(),
        network.net_count(),
        network.system_term_count()
    );
    let hand = life::hand_placement(&network);
    let outcome = Generator::new()
        .route_only(network, hand)
        .expect("hand placement is complete");
    println!("\nfigure 6.6 — hand placement:");
    println!(
        "  routed {}/222 nets in {:?}",
        outcome.report.routed.len(),
        outcome.route_time
    );
    for &n in &outcome.report.failed {
        println!("  unroutable: {}", outcome.diagram.network().net(n).name());
    }
    println!("  {}", outcome.diagram.metrics());
    std::fs::write("life_hand.svg", diagram::svg::render(&outcome.diagram))?;
    println!("  wrote life_hand.svg");

    // Figure 6.7: completely automatic generation. The paper leaves
    // extra routing space around dense parts ("there should always be
    // enough routing space between the modules"), which the spacing
    // options provide.
    let network = life::network();
    let outcome = Generator::new()
        .with_placing(
            PlaceConfig::strings()
                .with_module_spacing(2)
                .with_box_spacing(3)
                .with_part_spacing(5),
        )
        .with_routing(RouteConfig::new().with_margin(8))
        .generate(network);
    println!("\nfigure 6.7 — automatic placement:");
    println!(
        "  placed in {:?}, routed {}/222 nets in {:?}",
        outcome.place_time,
        outcome.report.routed.len(),
        outcome.route_time
    );
    for &n in &outcome.report.failed {
        println!("  unroutable: {}", outcome.diagram.network().net(n).name());
    }
    println!("  {}", outcome.diagram.metrics());
    std::fs::write("life_auto.svg", diagram::svg::render(&outcome.diagram))?;
    println!("  wrote life_auto.svg");
    Ok(())
}
