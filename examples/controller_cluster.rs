//! The paper's figures 6.2–6.4: the same 16-module / 24-net network
//! placed with three different settings of the partition (`-p`) and
//! box (`-b`) size options.
//!
//! ```sh
//! cargo run --example controller_cluster
//! ```
//!
//! Writes `cluster_p1b1.svg`, `cluster_p5b1.svg` and `cluster_p7b5.svg`
//! so the three styles — per-module clustering, functional groups, and
//! strings with left-to-right signal flow — can be compared side by
//! side, and prints the structure and quality numbers of each.

use std::error::Error;

use netart::place::PlaceConfig;
use netart::{diagram, Generator};
use netart_workloads::controller_cluster;

fn main() -> Result<(), Box<dyn Error>> {
    let presets = [
        ("fig 6.2 (-p 1 -b 1)", "cluster_p1b1.svg", PlaceConfig::default()),
        ("fig 6.3 (-p 5 -b 1)", "cluster_p5b1.svg", PlaceConfig::clusters()),
        ("fig 6.4 (-p 7 -b 5)", "cluster_p7b5.svg", PlaceConfig::strings()),
    ];
    for (label, file, cfg) in presets {
        let network = controller_cluster();
        let outcome = Generator::new().with_placing(cfg).generate(network);
        let s = outcome
            .diagram
            .placement()
            .structure()
            .expect("pablo attaches its structure");
        println!("{label}:");
        println!(
            "  {} partitions, {} boxes, longest string {}",
            s.partition_count(),
            s.box_count(),
            s.longest_string()
        );
        println!(
            "  routed {}/{} nets (place {:?}, route {:?})",
            outcome.report.routed.len(),
            outcome.report.routed.len() + outcome.report.failed.len(),
            outcome.place_time,
            outcome.route_time
        );
        println!("  {}", outcome.diagram.metrics());
        let check = outcome.diagram.check();
        println!("  {check}");
        // The figure-4.5 view: dashed partition and box outlines.
        std::fs::write(file, diagram::svg::render_with_structure(&outcome.diagram))?;
        println!("  wrote {file}");
    }
    Ok(())
}
