//! The paper's file-based workflow (Appendices A, B and D): module
//! descriptions go through *quinto* into the library, the network
//! arrives as net-list / call / io files, and the finished diagram is
//! written in the ESCHER record format.
//!
//! ```sh
//! cargo run --example netlist_files
//! ```

use std::error::Error;

use netart::diagram::escher;
use netart::netlist::format::{self, quinto};
use netart::netlist::Library;
use netart::Generator;

/// Appendix B module descriptions (coordinates on the 10× editor grid).
const MODULES: &[&str] = &[
    "module nand2 40 40\nin a 0 10\nin b 0 30\nout y 40 20\n",
    "module dff 40 60\nin d 0 30\nin ck 20 0\nout q 40 30\n",
    "module obuf 30 20\nin a 0 10\nout y 30 10\n",
];

/// Appendix A call-file: instance → template.
const CALL_FILE: &str = "\
g0 nand2
g1 nand2
ff0 dff
ff1 dff
out_drv0 obuf
";

/// Appendix A io-file: system terminal → type.
const IO_FILE: &str = "\
set in
rst in
q out
";

/// Appendix A net-list-file: net instance terminal (`root` = system
/// terminal).
const NET_LIST: &str = "\
n_set root set
n_set g0 a
n_rst root rst
n_rst g1 b
x0 g0 y
x0 g1 a
x0 ff0 d
x1 g1 y
x1 g0 b
x1 ff1 d
q0 ff0 q
q0 out_drv0 a
q1 ff1 q
q1 ff0 ck
q1 ff1 ck
n_q out_drv0 y
n_q root q
";

fn main() -> Result<(), Box<dyn Error>> {
    // quinto: build the module library from the descriptions.
    let mut lib = Library::new();
    for src in MODULES {
        let template = quinto::parse_module(src)?;
        println!(
            "quinto: added `{}` ({}x{}, {} terminals)",
            template.name(),
            template.size().0,
            template.size().1,
            template.terminal_count()
        );
        lib.add_template(template)?;
    }

    // pablo's input: the three Appendix A files.
    let network = format::parse_network(lib, NET_LIST, CALL_FILE, Some(IO_FILE))?;
    println!(
        "parsed network: {} modules, {} nets, {} system terminals",
        network.module_count(),
        network.net_count(),
        network.system_term_count()
    );

    // Generate and write the ESCHER diagram file.
    let outcome = Generator::strings().generate(network);
    println!(
        "routed {}/{} nets; {}",
        outcome.report.routed.len(),
        outcome.report.routed.len() + outcome.report.failed.len(),
        outcome.diagram.metrics()
    );
    let text = escher::write_diagram("latch_pair", &outcome.diagram);
    std::fs::write("latch_pair.esc", &text)?;
    println!("wrote latch_pair.esc ({} records)", text.lines().count());

    // Round-trip proof: the file reloads into an identical diagram.
    let reloaded = escher::parse_diagram(outcome.diagram.network().clone(), &text)?;
    assert_eq!(reloaded.metrics(), outcome.diagram.metrics());
    println!("reloaded latch_pair.esc -> metrics identical");
    Ok(())
}
