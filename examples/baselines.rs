//! The §4.5 argument, visualised: route the same 16-module network over
//! four placements — PABLO and the three baseline placers the paper
//! surveys — and compare the diagrams.
//!
//! ```sh
//! cargo run --release --example baselines
//! ```
//!
//! Writes `place_pablo.svg`, `place_epitaxial.svg`, `place_mincut.svg`
//! and `place_columnar.svg`, and prints the §4.2.1 improvement-pass
//! measurement the paper declined to pay for.

use std::error::Error;

use netart::diagram::{svg, Diagram};
use netart::place::{baseline, Pablo, PlaceConfig};
use netart::route::{Eureka, RouteConfig};
use netart_workloads::controller_cluster;

fn main() -> Result<(), Box<dyn Error>> {
    let net = controller_cluster();
    let cases = [
        ("pablo", Pablo::new(PlaceConfig::strings()).place(&net)),
        ("epitaxial", baseline::epitaxial::place(&net, 2)),
        ("mincut", baseline::mincut::place(&net, 2)),
        ("columnar", baseline::columnar::place(&net, 2)),
    ];
    for (name, placement) in cases {
        let mut diagram = Diagram::new(net.clone(), placement);
        let report = Eureka::new(RouteConfig::default()).route(&mut diagram);
        println!(
            "{name:<10} routed {}/{}  {}",
            report.routed.len(),
            report.routed.len() + report.failed.len(),
            diagram.metrics()
        );
        let file = format!("place_{name}.svg");
        std::fs::write(&file, svg::render_with_structure(&diagram))?;
        println!("{:>10} wrote {file}", "");
    }

    // The improvement pass the paper rejects (§4.2.1), measured.
    let mut improved = baseline::epitaxial::place(&net, 2);
    let r = baseline::exchange::improve(&net, &mut improved, 8);
    println!(
        "\npairwise exchange on the epitaxial placement: {} swaps accepted of {} tried,\n\
         estimated wire {} -> {} — a modest gain for a quadratic trial count,\n\
         which is exactly why §4.2.1 rules the class out for interactive use.",
        r.accepted, r.tried, r.before, r.after
    );
    Ok(())
}
