a in
b in
q out
