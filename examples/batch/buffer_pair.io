in in
